"""Observability surface of the query service.

A serving system is judged by its operational envelope, not by any single
request: sustained throughput, tail latency, how well the cache converts
repeat traffic into hits, and what batch sizes the scheduler actually manages
to form under the offered load.  :class:`StatsCollector` accumulates those
signals as batches complete; :meth:`StatsCollector.snapshot` freezes them into
an immutable :class:`ServiceStats` record that experiment runners and
benchmarks can put straight into a report table.

All times are *modeled* times on the simulated devices and the simulated
clock — deterministic, so stats assertions in tests are exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .cache import AnswerCache
    from .registry import IndexRegistry

__all__ = ["ServiceStats", "StatsCollector", "batch_size_bucket", "grow_table",
           "dedup_factor", "hit_rate"]


def dedup_factor(answered: int, kernel_queries: int) -> float:
    """Answered queries per kernel-executed query (the shared convention).

    1.0 before any answer (or with the skew path off and nothing served),
    ``inf`` when every answer came from a cache.
    """
    if kernel_queries:
        return answered / kernel_queries
    return float("inf") if answered else 1.0


def hit_rate(hits: int, misses: int) -> float:
    """Hits over lookups, 0.0 before the first lookup (shared convention)."""
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def grow_table(table: np.ndarray, used: int, needed: int) -> np.ndarray:
    """Return ``table`` grown by capacity doubling to hold ``needed`` slots.

    The first ``used`` entries are preserved; boolean tables come back
    zero-initialized beyond them (they encode "is this slot populated yet").
    Returns the input unchanged when it is already large enough.
    """
    capacity = table.size
    if needed <= capacity:
        return table
    while capacity < needed:
        capacity *= 2
    if table.dtype == np.bool_:
        grown = np.zeros(capacity, dtype=np.bool_)
    else:
        grown = np.empty(capacity, dtype=table.dtype)
    grown[:used] = table[:used]
    return grown


def batch_size_bucket(size: int) -> int:
    """The power-of-two histogram bucket (its lower bound) for a batch size."""
    if size < 1:
        raise ValueError("batch size must be at least 1")
    return 1 << (int(size).bit_length() - 1)


@dataclass(frozen=True)
class ServiceStats:
    """Immutable snapshot of a service's accumulated behaviour."""

    #: Queries submitted / answered so far (they differ by what is queued).
    queries_submitted: int
    queries_answered: int
    #: Queries actually executed on a backend kernel.  With the skew-aware
    #: path on this counts only the unique cache-miss pairs of each batch;
    #: with it off it equals ``queries_answered``.
    kernel_queries: int
    #: ``queries_answered / kernel_queries`` — how many answered queries each
    #: kernel-executed query amortized (1.0 with the skew path off; ``inf``
    #: when every answer came from the cache).
    dedup_factor: float
    #: Batches executed, and the distribution of their sizes in power-of-two
    #: buckets (bucket lower bound → count).
    batches_flushed: int
    mean_batch_size: float
    batch_size_histogram: Dict[int, int]
    #: Why batches flushed: counts for "size", "wait" and "drain" triggers,
    #: plus "hit" for front-door answer-cache batches (answered at
    #: admission, never queued).
    flush_triggers: Dict[str, int]
    #: How often each backend was chosen, keyed by backend key.
    backend_choices: Dict[str, int]
    #: Modeled end-to-end latency (batching wait + backend queueing + index
    #: build on a cold cache + batch execution) over all answered queries.
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    latency_max_s: float
    #: Modeled time backends spent executing batches (including index builds).
    busy_time_s: float
    #: Simulated span from the first arrival to the last completion.
    span_s: float
    #: Index-cache accounting, mirrored from the registry.
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_hit_rate: float
    cache_bytes_in_use: int
    #: Answer-cache accounting (the per-pair result cache of the skew-aware
    #: fast path; all zero when the cache is disabled).
    answer_cache_hits: int
    answer_cache_misses: int
    answer_cache_hit_rate: float
    answer_cache_bytes: int
    answer_cache_resets: int

    @property
    def throughput_qps(self) -> float:
        """Answered queries per second of simulated span."""
        if self.span_s <= 0:
            return float("inf") if self.queries_answered else 0.0
        return self.queries_answered / self.span_s

    def format(self) -> str:
        """Render the snapshot as an aligned text block for reports."""
        hist = " ".join(
            f"[{b}:{c}]" for b, c in sorted(self.batch_size_histogram.items())
        )
        triggers = " ".join(f"{k}={v}" for k, v in sorted(self.flush_triggers.items()))
        backends = " ".join(f"{k}={v}" for k, v in sorted(self.backend_choices.items()))
        lines = [
            f"queries            : {self.queries_answered}/{self.queries_submitted} answered",
            f"batches            : {self.batches_flushed} "
            f"(mean size {self.mean_batch_size:.1f})",
            f"batch histogram    : {hist or '-'}",
            f"flush triggers     : {triggers or '-'}",
            f"backend choices    : {backends or '-'}",
            f"latency p50/p99    : {self.latency_p50_s * 1e6:.2f} / "
            f"{self.latency_p99_s * 1e6:.2f} us (max {self.latency_max_s * 1e6:.2f} us)",
            f"throughput         : {self.throughput_qps:,.0f} queries/s "
            f"over {self.span_s * 1e3:.3f} ms span",
            f"backend busy time  : {self.busy_time_s * 1e3:.3f} ms modeled",
            f"index cache        : {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%}), {self.cache_evictions} evictions, "
            f"{self.cache_bytes_in_use:,} bytes",
            f"answer cache       : {self.answer_cache_hits} hits / "
            f"{self.answer_cache_misses} misses "
            f"({self.answer_cache_hit_rate:.1%}), "
            f"{self.answer_cache_resets} resets, "
            f"{self.answer_cache_bytes:,} bytes; "
            f"dedup factor {self.dedup_factor:.2f}x "
            f"({self.kernel_queries} kernel queries)",
        ]
        return "\n".join(lines)


@dataclass
class StatsCollector:
    """Mutable accumulator the service layer feeds as batches complete."""

    queries_submitted: int = 0
    queries_answered: int = 0
    kernel_queries: int = 0
    batches_flushed: int = 0
    busy_time_s: float = 0.0
    batch_sizes: Counter = field(default_factory=Counter)
    flush_triggers: Counter = field(default_factory=Counter)
    backend_choices: Counter = field(default_factory=Counter)
    # Growable flat latency table: batches append with one slice assignment
    # and the percentile computation in snapshot() reads a single array view
    # (no per-snapshot concatenation of per-batch chunks).
    _latency_table: np.ndarray = field(
        default_factory=lambda: np.empty(1024, dtype=np.float64))
    _latency_count: int = 0
    _first_arrival_s: Optional[float] = None
    _last_completion_s: Optional[float] = None

    @property
    def latency_values(self) -> np.ndarray:
        """View of every recorded per-query latency (in record order).

        Cluster-level aggregation merges these views across replicas so the
        cluster percentiles are exact, not an approximation stitched from
        per-replica percentiles.
        """
        return self._latency_table[:self._latency_count]

    @property
    def first_arrival_s(self) -> Optional[float]:
        """Earliest recorded arrival time (``None`` before any batch)."""
        return self._first_arrival_s

    @property
    def last_completion_s(self) -> Optional[float]:
        """Latest recorded batch completion time (``None`` before any batch)."""
        return self._last_completion_s

    def record_submit(self, count: int = 1) -> None:
        """Count newly submitted queries."""
        self.queries_submitted += int(count)

    def record_hedge(self, service_time_s: float) -> None:
        """Charge a hedged duplicate execution's backend time.

        A hedge re-runs a straggling batch on a second replica; its answers
        are byte-identical to the original's, so nothing is added to the
        answered/latency accounting — only the duplicate backend occupancy
        is billed here (the cost side of the tail-latency trade).
        """
        self.busy_time_s += float(service_time_s)

    def reserve(self, capacity: int) -> None:
        """Pre-size the latency table (capacity planning for long streams).

        Growth is amortized O(1) either way; reserving up front keeps the
        doubling copies out of latency-sensitive serving windows.
        """
        self._latency_table = grow_table(
            self._latency_table, self._latency_count, int(capacity)
        )

    def record_batch(self, *, size: int, trigger: str, backend_key: str,
                     service_time_s: float, latencies_s: np.ndarray,
                     first_arrival_s: float, completion_s: float,
                     kernel_queries: Optional[int] = None) -> None:
        """Fold one completed batch into the counters.

        ``kernel_queries`` is how many of the batch's queries actually ran
        on a backend kernel (the unique cache misses under the skew-aware
        path); it defaults to the full batch size.
        """
        self.queries_answered += int(size)
        self.kernel_queries += int(size) if kernel_queries is None else int(kernel_queries)
        self.batches_flushed += 1
        self.busy_time_s += float(service_time_s)
        self.batch_sizes[batch_size_bucket(size)] += 1
        self.flush_triggers[trigger] += 1
        self.backend_choices[backend_key] += 1
        latencies = np.asarray(latencies_s, dtype=np.float64)
        end = self._latency_count + latencies.size
        self._latency_table = grow_table(self._latency_table,
                                         self._latency_count, end)
        self._latency_table[self._latency_count:end] = latencies
        self._latency_count = end
        if self._first_arrival_s is None or first_arrival_s < self._first_arrival_s:
            self._first_arrival_s = float(first_arrival_s)
        if self._last_completion_s is None or completion_s > self._last_completion_s:
            self._last_completion_s = float(completion_s)

    def snapshot(self, *, registry: Optional["IndexRegistry"] = None,
                 answer_cache: Optional["AnswerCache"] = None) -> ServiceStats:
        """Freeze the current counters into a :class:`ServiceStats`.

        ``registry`` (an :class:`~repro.service.registry.IndexRegistry`)
        contributes the index-cache section and ``answer_cache`` (an
        :class:`~repro.service.cache.AnswerCache`) the answer-cache section;
        omitted, the corresponding fields read zero.
        """
        if self._latency_count:
            lat = self._latency_table[:self._latency_count]
            p50, p99 = (float(v) for v in np.percentile(lat, [50.0, 99.0]))
            mean, worst = float(lat.mean()), float(lat.max())
        else:
            p50 = p99 = mean = worst = 0.0
        span = 0.0
        if self._first_arrival_s is not None and self._last_completion_s is not None:
            span = self._last_completion_s - self._first_arrival_s
        mean_batch = (self.queries_answered / self.batches_flushed
                      if self.batches_flushed else 0.0)
        return ServiceStats(
            queries_submitted=self.queries_submitted,
            queries_answered=self.queries_answered,
            kernel_queries=self.kernel_queries,
            dedup_factor=dedup_factor(self.queries_answered,
                                      self.kernel_queries),
            batches_flushed=self.batches_flushed,
            mean_batch_size=mean_batch,
            batch_size_histogram=dict(self.batch_sizes),
            flush_triggers=dict(self.flush_triggers),
            backend_choices=dict(self.backend_choices),
            latency_mean_s=mean,
            latency_p50_s=p50,
            latency_p99_s=p99,
            latency_max_s=worst,
            busy_time_s=self.busy_time_s,
            span_s=span,
            cache_hits=registry.hits if registry is not None else 0,
            cache_misses=registry.misses if registry is not None else 0,
            cache_evictions=registry.evictions if registry is not None else 0,
            cache_hit_rate=registry.hit_rate if registry is not None else 0.0,
            cache_bytes_in_use=registry.bytes_in_use if registry is not None else 0,
            answer_cache_hits=answer_cache.hits if answer_cache is not None else 0,
            answer_cache_misses=(
                answer_cache.misses if answer_cache is not None else 0),
            answer_cache_hit_rate=(
                answer_cache.hit_rate if answer_cache is not None else 0.0),
            answer_cache_bytes=(
                answer_cache.nbytes if answer_cache is not None else 0),
            answer_cache_resets=(
                answer_cache.resets if answer_cache is not None else 0),
        )
