"""Vectorized answer cache: repeated queries cost a table probe, not a kernel.

Under skewed traffic the same ``(x, y)`` pairs are asked thousands of times
per second; recomputing a constant-time LCA for each repeat still pays the
whole kernel path — a dozen scattered node-table gathers per query plus
bounds checks and cost accounting.  This module adds the standard
serving-stack answer: an exact, bounded, O(1)-per-probe answer cache, built
so a whole column batch is probed (and populated) with a handful of NumPy
passes instead of a Python loop.

:class:`AnswerCache` is an open-addressing hash table over one preallocated
``uint64`` array holding two words per slot:

* ``table[2 * s]`` — the packed canonical pair key
  (:func:`repro.lca.dedup.pack_query_pairs`);
* ``table[2 * s + 1]`` — ``(epoch << 52) | (space << 32) | answer``: the
  slot's epoch stamp, its dataset-space id and the cached answer in one
  word.

The layout is the point: a probe touches exactly one 16-byte-aligned slot —
one cache line — and a *hit* needs no further memory access, because the
answer rides in the word that was gathered for the match check.  Compare a
dozen scattered reads for the query kernel proper.

* **Batched probe rounds.**  ``lookup``/``insert`` advance all unresolved
  lanes of a batch one linear-probe step per round with fancy indexing; the
  round count is bounded by the longest probe chain built this epoch, so a
  lookup over a warm cache is typically a single vectorized pass.
* **Exactness.**  A hit requires the stored 64-bit pair key *and* the
  dataset space id *and* the current epoch to match exactly — hash
  collisions only cost extra probe rounds, never a wrong answer.  The
  service layer's property tests assert answers are bit-identical with the
  cache on and off.
* **Seeded salt.**  Slot indices come from a salted multiplicative hash
  (the salts are splitmix64-derived from a construction seed), so key
  patterns cannot be crafted against a fixed hash — and tests *can* craft
  collisions by fixing the seed.
* **Bounded memory, epoch-based reset.**  Capacity is fixed up front from a
  byte budget.  When occupancy would cross the load-factor bound the table
  resets by bumping its epoch — an O(1) logical clear (slots whose stamp
  lags the epoch read as empty).  The 12-bit epoch field wraps every 4095
  resets, at which point the array is zeroed once.

The cache is a host-side structure in the simulated-serving world: the
service layer charges each consulted batch a small modeled probe cost
(:data:`ANSWER_CACHE_PROBE_COST` on the multi-core host CPU) and books
full-hit batches on a dedicated ``"cache"`` backend lane.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple

import numpy as np

from ..device import XEON_X5650_MULTI, modeled_kernel_time
from ..errors import ServiceError
from ..lca import QueryKernelCost

__all__ = [
    "AnswerCache",
    "CacheCounters",
    "ANSWER_CACHE_PROBE_COST",
    "BYTES_PER_SLOT",
    "MIN_CACHE_BYTES",
    "MAX_SPACES",
    "answer_cache_probe_time",
]

#: Per-slot footprint: uint64 pair key + packed (epoch | space | answer) word.
BYTES_PER_SLOT = 16

#: Smallest supported byte budget (64 slots).
MIN_CACHE_BYTES = 64 * BYTES_PER_SLOT

#: The packed word gives the dataset-space id 20 bits.
MAX_SPACES = 1 << 20

#: Modeled host-side cost of canonicalizing, packing and probing one query:
#: a few word ops plus one scattered 16-byte slot read.  Charged per batch
#: query on the multi-core host CPU whenever the skew-aware path runs.
ANSWER_CACHE_PROBE_COST = QueryKernelCost(ops=12.0, bytes_read=24.0, bytes_written=8.0)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)

_EPOCH_SHIFT = np.uint64(52)
_HI_SHIFT = np.uint64(32)
_VALUE_MASK = np.uint64(0xFFFFFFFF)
#: Epoch stamps live in the word's top 12 bits; 0 marks a never-used slot.
_MAX_EPOCH = (1 << 12) - 1

_probe_time_memo: Dict[int, float] = {}


def answer_cache_probe_time(size: int) -> float:
    """Modeled time to probe a batch of ``size`` queries (memoized by size)."""
    cached = _probe_time_memo.get(size)
    if cached is None:
        cost = ANSWER_CACHE_PROBE_COST
        cached = modeled_kernel_time(
            XEON_X5650_MULTI,
            threads=size,
            ops=cost.ops * size,
            bytes_read=cost.bytes_read * size,
            bytes_written=cost.bytes_written * size,
            launches=1,
            random_access=True,
        )
        _probe_time_memo[size] = cached
    return cached


class CacheCounters(NamedTuple):
    """One consistent snapshot of an :class:`AnswerCache`'s counters."""

    hits: int
    misses: int
    insertions: int
    resets: int


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (bijective on uint64)."""
    x = x + _GOLDEN
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX_1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX_2
    return x ^ (x >> np.uint64(31))


class AnswerCache:
    """Bounded, exact, vectorized open-addressing answer cache.

    Parameters
    ----------
    capacity_bytes:
        Byte budget; the slot count is the largest power of two whose
        two-word slots fit (at least :data:`MIN_CACHE_BYTES`).
    seed:
        Salt seed for the slot hash.  Two caches with equal seeds behave
        identically on equal operation sequences (the cluster layer relies
        on this for its 1-replica ≡ single-service equivalence).
    max_load:
        Occupancy fraction that triggers an epoch reset.

    Usage
    -----
    >>> import numpy as np
    >>> cache = AnswerCache(1 << 14)
    >>> keys = np.array([7, 9], dtype=np.uint64)
    >>> cache.insert(0, keys, np.array([41, 42]))
    >>> values, found, hits = cache.lookup(0, keys)
    >>> (values.tolist(), found.tolist(), hits)
    ([41, 42], [True, True], 2)
    >>> cache.lookup(1, keys)[1].tolist()   # other dataset space: miss
    [False, False]
    """

    def __init__(
        self, capacity_bytes: int, *, seed: int = 0, max_load: float = 0.7
    ) -> None:
        if capacity_bytes < MIN_CACHE_BYTES:
            raise ServiceError(
                f"answer cache needs at least {MIN_CACHE_BYTES} bytes "
                f"(64 slots), got {capacity_bytes}"
            )
        if not 0.0 < max_load < 1.0:
            raise ServiceError("max_load must be in (0, 1)")
        slots = 1 << (int(capacity_bytes // BYTES_PER_SLOT).bit_length() - 1)
        self._slots = slots
        self._mask = np.int64(slots - 1)
        self._slot_shift = np.uint64(64 - (slots.bit_length() - 1))
        self._table = np.zeros(2 * slots, dtype=np.uint64)
        # Row view of the same buffer: one fancy-index gathers a slot's two
        # words (one 16-byte row, one cache line) in a single pass.
        self._rows = self._table.reshape(slots, 2)
        self._epoch = 1
        seed_arr = np.asarray([int(seed) & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        self._salt = _splitmix64(seed_arr)[0]
        # Per-dataset-space salts, derived lazily (array math only: NumPy
        # scalar uint64 overflow warns, array overflow wraps silently).
        self._space_salts: Dict[int, np.uint64] = {}
        self._used = 0
        self._max_used = max(1, int(slots * max_load))
        self._max_probe = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._resets = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def slots(self) -> int:
        """Number of table slots (a power of two)."""
        return self._slots

    @property
    def nbytes(self) -> int:
        """Actual footprint of the preallocated slot array."""
        return int(self._table.nbytes)

    @property
    def used(self) -> int:
        """Live entries in the current epoch."""
        return self._used

    @property
    def load(self) -> float:
        """Occupancy fraction of the current epoch."""
        return self._used / self._slots

    @property
    def hits(self) -> int:
        """Lookup keys answered from the table so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookup keys not found so far."""
        return self._misses

    @property
    def insertions(self) -> int:
        """Keys inserted so far (across all epochs)."""
        return self._insertions

    @property
    def resets(self) -> int:
        """Epoch resets triggered by the load-factor bound."""
        return self._resets

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    @property
    def counters(self) -> "CacheCounters":
        """All four lifetime counters as one immutable record.

        Observability readers (the service's cache-event emission, the
        metrics adapters) snapshot this before and after an operation and
        act on the deltas, instead of reading four properties racily.
        """
        return CacheCounters(self._hits, self._misses,
                             self._insertions, self._resets)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _space_salt(self, space: int) -> np.uint64:
        salt = self._space_salts.get(space)
        if salt is None:
            if not 0 <= space < MAX_SPACES:
                raise ServiceError(
                    f"dataset space id must be in [0, {MAX_SPACES}), got {space}"
                )
            mixed = np.asarray([space], dtype=np.uint64)
            salt = _splitmix64(mixed ^ self._salt)[0]
            self._space_salts[space] = salt
        return salt

    def _home_slots(self, space: int, keys: np.ndarray) -> np.ndarray:
        # Salted multiplicative (Fibonacci) hashing: one xor, one wrapping
        # multiply, one shift.  The multiplier diffuses every key bit into
        # the *top* bits, which is all the slot index uses; the zero-copy
        # view reinterprets the (always < 2^63) result as int64 indices.
        salted = (keys ^ self._space_salt(space)) * _GOLDEN
        return (salted >> self._slot_shift).view(np.int64)

    def _hi_word(self, space: int) -> np.uint64:
        return np.uint64((self._epoch << 20) | space)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(
        self, space: int, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Batched probe: ``(values, found, hits)`` for every key, in order.

        ``keys`` may contain duplicates (a raw batch is probed as-is).  A
        probe round is one 16-byte slot-row gather per unresolved lane; the
        round count is bounded by the longest chain inserted this epoch.
        ``values`` entries where ``found`` is False are unspecified.
        """
        m = int(keys.size)
        if m == 0 or self._used == 0:
            self._misses += m
            return np.zeros(m, dtype=np.int64), np.zeros(m, dtype=bool), 0
        slot = self._home_slots(space, keys)
        # Round 1 runs on the whole batch with no lane indexing — on a warm
        # cache (short chains) it resolves almost every lane: one row gather
        # (a slot's two words share a cache line), two compares, and the
        # answers drop out of the already-gathered word.
        rows = np.take(self._rows, slot, axis=0)
        k = rows[:, 0]
        w = rows[:, 1]
        matched = (k == keys) & ((w >> _HI_SHIFT) == self._hi_word(space))
        values = (w & _VALUE_MASK).view(np.int64)
        found = matched
        if matched.all():
            # Full hit in round 1 — the steady state under hot traffic.
            self._hits += m
            return values, found, m
        live = (w >> _EPOCH_SHIFT) == np.uint64(self._epoch)
        unresolved = live & ~matched
        if unresolved.any() and self._max_probe > 1:
            # Lanes that reached an empty slot are definitive misses; lanes
            # on a foreign occupied slot keep probing, one linear step per
            # still-unresolved lane per round.
            active = np.flatnonzero(unresolved)
            slot_a = (slot[active] + 1) & self._mask
            keys_a = keys[active]
            for _ in range(self._max_probe - 1):
                rows_a = np.take(self._rows, slot_a, axis=0)
                ka = rows_a[:, 0]
                wa = rows_a[:, 1]
                match_a = (ka == keys_a) & ((wa >> _HI_SHIFT) == self._hi_word(space))
                if match_a.any():
                    lanes = active[match_a]
                    values[lanes] = (wa[match_a] & _VALUE_MASK).view(np.int64)
                    found[lanes] = True
                cont = ((wa >> _EPOCH_SHIFT) == np.uint64(self._epoch)) & ~match_a
                active = active[cont]
                if active.size == 0:
                    break
                slot_a = (slot_a[cont] + 1) & self._mask
                keys_a = keys_a[cont]
        hits = int(np.count_nonzero(found))
        self._hits += hits
        self._misses += m - hits
        return values, found, hits

    def insert(self, space: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert distinct, absent keys (one dataset space per call).

        The caller passes the *unique miss* keys of a batch — deduplicated
        and known not to be present — which is exactly what the serving
        layer has in hand after a lookup.  Lanes that lose a same-slot race
        to another lane simply keep probing, so within-batch insertions
        land on distinct slots.  If the batch would push occupancy past the
        load bound the table resets first; a batch larger than the whole
        load bound is truncated (the cache is best-effort).
        """
        m = int(keys.size)
        if m == 0:
            return
        if self._used + m > self._max_used:
            self.reset()
            if m > self._max_used:
                keys = keys[: self._max_used]
                values = values[: self._max_used]
                m = int(keys.size)
        words = (
            np.asarray(values, dtype=np.int64).astype(np.uint64)
            | (self._hi_word(space) << _HI_SHIFT)
        )
        slot = self._home_slots(space, keys)
        active = np.arange(m, dtype=np.int64)
        epoch = np.uint64(self._epoch)
        rounds = 0
        while active.size:
            rounds += 1
            i = slot[active] << 1
            occupied = (self._table[i + 1] >> _EPOCH_SHIFT) == epoch
            empty_lanes = active[~occupied]
            survivors = active[occupied]
            if empty_lanes.size:
                ie = slot[empty_lanes] << 1
                # Scatter writes: for duplicate slots the last write wins on
                # both words alike, so the winning lane is consistent.
                self._table[ie] = keys[empty_lanes]
                self._table[ie + 1] = words[empty_lanes]
                won = self._table[ie] == keys[empty_lanes]
                self._used += int(np.count_nonzero(won))
                if not won.all():
                    survivors = np.concatenate([survivors, empty_lanes[~won]])
            active = survivors
            if active.size:
                slot[active] = (slot[active] + 1) & self._mask
        self._insertions += m
        if rounds > self._max_probe:
            self._max_probe = rounds

    def reset(self) -> None:
        """Logically clear the table by advancing the epoch (O(1)).

        Every 4095 resets the 12-bit epoch field wraps and the slot array
        is zeroed for real.

        >>> import numpy as np
        >>> cache = AnswerCache(1 << 12)
        >>> cache.insert(0, np.array([3], dtype=np.uint64), np.array([9]))
        >>> cache.reset()
        >>> cache.lookup(0, np.array([3], dtype=np.uint64))[1].tolist()
        [False]
        """
        if self._epoch >= _MAX_EPOCH:
            self._table.fill(0)
            self._epoch = 0
        self._epoch += 1
        self._used = 0
        self._max_probe = 0
        self._resets += 1

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"AnswerCache(slots={self._slots}, used={self._used}, "
            f"hit_rate={self.hit_rate:.2f}, resets={self._resets})"
        )
