"""Dataset store and LRU-cached index registry for the serving subsystem.

A production query server cannot afford to rebuild an Euler tour or the
Inlabel tables on every request: preprocessing costs milliseconds while a
query costs nanoseconds.  This module therefore separates the two concerns:

* :class:`ForestStore` owns the *raw* named datasets — trees as parent arrays
  and graphs as edge lists — registered either eagerly or through a lazy
  zero-argument loader (so a registry over hundreds of datasets does not
  materialize them all up front);
* :class:`IndexRegistry` owns the *derived* artifacts (Inlabel LCA
  structures, Euler tours, tree statistics, CSR adjacency, bridge results),
  built lazily on first use, keyed by ``(dataset, kind, device)`` and held in
  a byte-accounted LRU cache with optional capacity-driven eviction.

Builds are charged to an :class:`~repro.device.ExecutionContext` on the
artifact's device, so the modeled preprocessing cost of a cache miss is
available to the service layer (a cold dataset's first batch pays for its own
index build, exactly like a real serving system warming a cache).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..bridges import find_bridges_tarjan_vishkin
from ..device import DeviceSpec, ExecutionContext
from ..errors import ServiceError
from ..euler import build_euler_tour_from_parents, tree_statistics_from_parents
from ..graphs import CSRGraph, EdgeList
from ..graphs.trees import validate_parents
from ..lca import InlabelLCA, SequentialInlabelLCA

__all__ = [
    "ArtifactKey",
    "CacheEntry",
    "ForestStore",
    "IndexRegistry",
    "ARTIFACT_KINDS",
    "artifact_nbytes",
]

#: Artifact kinds the registry knows how to build.
ARTIFACT_KINDS = ("lca", "tour", "stats", "csr", "bridges")


def artifact_nbytes(obj: object) -> int:
    """Recursively sum the ``nbytes`` of every NumPy array reachable from ``obj``.

    Walks dataclass fields, instance ``__dict__`` attributes, dicts, lists and
    tuples; every distinct array buffer is counted once — views are resolved
    to their base array, so an artifact holding both an array and slices of
    it is not double-counted.  Non-array leaves contribute nothing — the
    arrays utterly dominate the footprint of every artifact this registry
    caches.
    """
    seen: set = set()
    buffers: set = set()
    total = 0
    stack = [obj]
    while stack:
        item = stack.pop()
        if item is None or id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, np.ndarray):
            base = item
            while isinstance(base.base, np.ndarray):
                base = base.base
            if id(base) not in buffers:
                buffers.add(id(base))
                total += int(base.nbytes)
        elif isinstance(item, dict):
            stack.extend(item.values())
        elif isinstance(item, (list, tuple)):
            stack.extend(item)
        elif dataclasses.is_dataclass(item) and not isinstance(item, type):
            stack.extend(getattr(item, f.name) for f in dataclasses.fields(item))
        elif hasattr(item, "__dict__"):
            stack.extend(vars(item).values())
    return total


@dataclass(frozen=True)
class ArtifactKey:
    """Cache key: which derived artifact of which dataset on which device.

    ``variant`` distinguishes flavours of the same kind on the same device —
    for ``"lca"`` it is ``"sequential"`` or ``"parallel"`` (which execution
    flavour of the Inlabel algorithm the entry holds), or the key of a real
    kernel backend from the :mod:`repro.backends` registry (the entry then
    holds that backend's compiled kernel).  Index artifacts are per-backend:
    two backends serving the same dataset each compile and cache their own.
    """

    dataset: str
    kind: str
    device: str
    variant: str = ""


@dataclass
class CacheEntry:
    """One cached artifact with its accounting metadata."""

    key: ArtifactKey
    artifact: object
    nbytes: int
    build_time_s: float
    hits: int = 0


class ForestStore:
    """Named raw datasets: trees (parent arrays) and graphs (edge lists).

    Datasets can be registered eagerly (pass the data) or lazily (pass a
    zero-argument ``loader``); lazy datasets are materialized once on first
    access and memoized.
    """

    def __init__(self) -> None:
        self._trees: Dict[str, Optional[np.ndarray]] = {}
        self._graphs: Dict[str, Optional[EdgeList]] = {}
        self._loaders: Dict[str, Callable[[], object]] = {}
        self._validate_on_load: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _check_name(self, name: str) -> None:
        if not name:
            raise ServiceError("dataset name must be non-empty")
        if name in self._trees or name in self._graphs:
            raise ServiceError(f"dataset {name!r} is already registered")

    def add_tree(self, name: str, parents: Optional[np.ndarray] = None, *,
                 loader: Optional[Callable[[], np.ndarray]] = None,
                 validate: bool = False) -> None:
        """Register a tree dataset, either eagerly or via a lazy loader.

        With ``validate=True`` the parent array is checked with
        :func:`~repro.graphs.trees.validate_parents` — immediately for an
        eager registration, at materialization time for a lazy one.
        """
        self._check_name(name)
        if (parents is None) == (loader is None):
            raise ServiceError("pass exactly one of parents= or loader=")
        if parents is not None:
            parents = np.asarray(parents, dtype=np.int64)
            if validate:
                validate_parents(parents)
            self._trees[name] = parents
        else:
            self._trees[name] = None
            self._loaders[name] = loader  # type: ignore[assignment]
            self._validate_on_load[name] = validate

    def add_graph(self, name: str, edges: Optional[EdgeList] = None, *,
                  loader: Optional[Callable[[], EdgeList]] = None) -> None:
        """Register a graph dataset, either eagerly or via a lazy loader."""
        self._check_name(name)
        if (edges is None) == (loader is None):
            raise ServiceError("pass exactly one of edges= or loader=")
        if edges is not None:
            self._graphs[name] = edges
        else:
            self._graphs[name] = None
            self._loaders[name] = loader  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def has_tree(self, name: str) -> bool:
        """Whether ``name`` is a registered tree dataset."""
        return name in self._trees

    def has_graph(self, name: str) -> bool:
        """Whether ``name`` is a registered graph dataset."""
        return name in self._graphs

    @property
    def names(self) -> List[str]:
        """All registered dataset names (trees first, then graphs)."""
        return list(self._trees) + list(self._graphs)

    def tree(self, name: str) -> np.ndarray:
        """The parent array of tree dataset ``name`` (materializing it if lazy)."""
        if name not in self._trees:
            raise ServiceError(f"unknown tree dataset {name!r}")
        if self._trees[name] is None:
            # The loader is removed only after it succeeds (and the loaded
            # array passes validation when requested), so a transient loader
            # failure leaves the dataset retryable, not broken.
            parents = np.asarray(self._loaders[name](), dtype=np.int64)
            if self._validate_on_load[name]:
                validate_parents(parents)
            self._trees[name] = parents
            del self._loaders[name]
            del self._validate_on_load[name]
        return self._trees[name]  # type: ignore[return-value]

    def graph(self, name: str) -> EdgeList:
        """The edge list of graph dataset ``name`` (materializing it if lazy)."""
        if name not in self._graphs:
            raise ServiceError(f"unknown graph dataset {name!r}")
        if self._graphs[name] is None:
            self._graphs[name] = self._loaders[name]()  # type: ignore[assignment]
            del self._loaders[name]
        return self._graphs[name]  # type: ignore[return-value]


class IndexRegistry:
    """Byte-accounted LRU cache of derived artifacts over a :class:`ForestStore`.

    Parameters
    ----------
    store:
        The raw datasets the artifacts are derived from.
    capacity_bytes:
        Optional cache capacity.  After every insertion, least-recently-used
        entries are evicted until the accounted bytes fit; the entry just
        inserted is never evicted (a single artifact larger than the capacity
        is served but not retained alongside anything else).  ``None`` means
        unbounded.
    """

    def __init__(self, store: ForestStore, *,
                 capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ServiceError("capacity_bytes must be positive (or None)")
        self.store = store
        self.capacity_bytes = capacity_bytes
        self._cache: "OrderedDict[ArtifactKey, CacheEntry]" = OrderedDict()
        self._bytes_in_use = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._build_time_s = 0.0
        #: Optional observability hook, called as ``hook(event, key, value)``
        #: with ``("load", key, modeled build seconds)`` after each miss
        #: build and ``("evict", key, freed bytes)`` after each eviction.
        #: The service layer wires this to the attached trace recorder.
        self.event_hook: Optional[Callable[[str, ArtifactKey, float], None]] = None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _build(self, key: ArtifactKey, spec: DeviceSpec,
               ctx: ExecutionContext) -> object:
        kind = key.kind
        if kind == "lca":
            parents = self.store.tree(key.dataset)
            if key.variant == "sequential":
                return SequentialInlabelLCA(parents, ctx=ctx)
            if key.variant in ("", "parallel"):
                return InlabelLCA(parents, ctx=ctx)
            # Any other variant names a real kernel backend; compile its
            # per-tree kernel as the artifact (lazy import: the registry
            # stays usable without the backend package loaded).
            from ..backends import get_kernel_backend

            return get_kernel_backend(key.variant).compile(parents, ctx=ctx)
        if kind == "tour":
            return build_euler_tour_from_parents(self.store.tree(key.dataset), ctx=ctx)
        if kind == "stats":
            return tree_statistics_from_parents(self.store.tree(key.dataset), ctx=ctx)
        if kind == "csr":
            return CSRGraph.from_edgelist(self.store.graph(key.dataset), ctx=ctx)
        if kind == "bridges":
            return find_bridges_tarjan_vishkin(self.store.graph(key.dataset), ctx=ctx)
        raise ServiceError(
            f"unknown artifact kind {kind!r}; known kinds: {ARTIFACT_KINDS}"
        )

    # ------------------------------------------------------------------
    # Cache interface
    # ------------------------------------------------------------------
    def fetch(self, dataset: str, kind: str, spec: DeviceSpec,
              *, ctx: Optional[ExecutionContext] = None,
              sequential: Optional[bool] = None) -> Tuple[CacheEntry, bool]:
        """Return ``(entry, hit)`` for an artifact, building it on a miss.

        On a miss the build is charged to ``ctx`` when given, otherwise to a
        fresh private context on ``spec``; either way the entry records the
        modeled build time so callers can account cold-start latency.

        For ``kind="lca"``, ``sequential`` selects the execution flavour; it
        must match the :class:`~repro.service.dispatch.Backend` that will
        serve the batches, so dispatch estimates equal actual charges.  When
        omitted it is inferred from the spec (single-core CPU → sequential).
        """
        variant = ""
        if kind == "lca":
            if sequential is None:
                sequential = spec.kind == "cpu" and spec.cores == 1
            variant = "sequential" if sequential else "parallel"
        return self.fetch_by_key(ArtifactKey(dataset, kind, spec.name, variant),
                                 spec=spec, ctx=ctx)

    def fetch_by_key(self, key: ArtifactKey, *, spec: Optional[DeviceSpec] = None,
                     ctx: Optional[ExecutionContext] = None
                     ) -> Tuple[CacheEntry, bool]:
        """Keyed fast path of :meth:`fetch` for callers that hold a prebuilt key.

        The service layer memoizes one :class:`ArtifactKey` per
        (dataset, backend) pair, so its per-batch cache lookup is a single
        dict probe with no key construction or variant resolution.  ``spec``
        is only needed on a miss (to build and charge the artifact), so it
        must be passed whenever the entry might not be cached.
        """
        entry = self._cache.get(key)
        if entry is not None:
            self._hits += 1
            entry.hits += 1
            self._cache.move_to_end(key)
            return entry, True

        self._misses += 1
        if spec is None:
            raise ServiceError(
                f"artifact {key} is not cached and no device spec was given "
                f"to build it"
            )
        build_ctx = ctx if ctx is not None else ExecutionContext(spec)
        before = build_ctx.elapsed
        artifact = self._build(key, spec, build_ctx)
        build_time = build_ctx.elapsed - before
        entry = CacheEntry(key=key, artifact=artifact,
                           nbytes=artifact_nbytes(artifact),
                           build_time_s=build_time)
        self._cache[key] = entry
        self._bytes_in_use += entry.nbytes
        self._build_time_s += build_time
        if self.event_hook is not None:
            self.event_hook("load", key, float(build_time))
        self._evict_over_capacity(keep=key)
        return entry, False

    def get(self, dataset: str, kind: str, spec: DeviceSpec,
            *, ctx: Optional[ExecutionContext] = None,
            sequential: Optional[bool] = None) -> object:
        """The artifact itself (see :meth:`fetch` for the accounting variant)."""
        entry, _ = self.fetch(dataset, kind, spec, ctx=ctx, sequential=sequential)
        return entry.artifact

    def _evict_over_capacity(self, keep: ArtifactKey) -> None:
        if self.capacity_bytes is None:
            return
        while self._bytes_in_use > self.capacity_bytes and len(self._cache) > 1:
            victim_key = next(k for k in self._cache if k != keep)
            self.evict(victim_key)

    def evict(self, key: ArtifactKey) -> None:
        """Drop one cached artifact (a no-op if it is not cached)."""
        entry = self._cache.pop(key, None)
        if entry is not None:
            self._bytes_in_use -= entry.nbytes
            self._evictions += 1
            if self.event_hook is not None:
                self.event_hook("evict", key, float(entry.nbytes))

    def clear(self) -> None:
        """Drop every cached artifact (counted as evictions)."""
        for key in list(self._cache):
            self.evict(key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> List[ArtifactKey]:
        """Cached keys from least- to most-recently used."""
        return list(self._cache)

    def __contains__(self, key: ArtifactKey) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def bytes_in_use(self) -> int:
        """Accounted bytes of all cached artifacts."""
        return self._bytes_in_use

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of cache misses (i.e. artifact builds) so far."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries evicted so far."""
        return self._evictions

    @property
    def build_time_s(self) -> float:
        """Total modeled time spent building artifacts on misses."""
        return self._build_time_s

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before the first lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        cap = "unbounded" if self.capacity_bytes is None else f"{self.capacity_bytes}B"
        return (f"IndexRegistry(entries={len(self._cache)}, "
                f"bytes={self._bytes_in_use}, capacity={cap}, "
                f"hit_rate={self.hit_rate:.2f})")
