"""Deterministic simulated clock shared by the serving subsystem.

Everything in :mod:`repro.service` is timed against this clock rather than
wall time: arrivals carry explicit timestamps, wait-triggered flushes fire at
exact modeled deadlines, and batch completions are arrival-plus-modeled-cost.
The whole subsystem is therefore reproducible bit for bit — the same query
trace always produces the same batches, latencies and statistics, with no
flakiness from scheduler jitter or host load.
"""

from __future__ import annotations

from ..errors import ServiceError

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotone simulated time source (seconds as a float).

    Time only moves when a caller advances it; it never moves backwards.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ServiceError(f"cannot advance the clock by a negative delta ({dt})")
        self._now += float(dt)
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to the absolute instant ``t`` and return it.

        Advancing to the current time is a no-op; advancing into the past is
        an error (simulated time is monotone).
        """
        t = float(t)
        if t < self._now:
            raise ServiceError(
                f"cannot move the clock backwards (now={self._now}, requested={t})"
            )
        self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SimulatedClock(now={self._now!r})"
