"""Deterministic simulated clock shared by the serving subsystem.

Everything in :mod:`repro.service` is timed against this clock rather than
wall time: arrivals carry explicit timestamps, wait-triggered flushes fire at
exact modeled deadlines, and batch completions are arrival-plus-modeled-cost.
The whole subsystem is therefore reproducible bit for bit — the same query
trace always produces the same batches, latencies and statistics, with no
flakiness from scheduler jitter or host load.

:class:`WallClock` is the measured counterpart: a monotone real-time source
(``time.perf_counter`` anchored at construction) with the same read
interface.  It cannot be advanced — real time advances itself — so it is not
a drop-in replacement for :class:`SimulatedClock` inside the serving loops;
its role is *measurement*: the calibration harness
(:mod:`repro.backends.calibrate`) times real kernel launches against it to
fit the cost constants that dispatch then uses.
"""

from __future__ import annotations

import time

from ..errors import ServiceError

__all__ = ["SimulatedClock", "WallClock"]


class SimulatedClock:
    """A monotone simulated time source (seconds as a float).

    Time only moves when a caller advances it; it never moves backwards.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ServiceError(f"cannot advance the clock by a negative delta ({dt})")
        self._now += float(dt)
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to the absolute instant ``t`` and return it.

        Advancing to the current time is a no-op; advancing into the past is
        an error (simulated time is monotone).
        """
        t = float(t)
        if t < self._now:
            raise ServiceError(
                f"cannot move the clock backwards (now={self._now}, requested={t})"
            )
        self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SimulatedClock(now={self._now!r})"


class WallClock:
    """A monotone *real-time* source with the :class:`SimulatedClock` read API.

    ``now`` is seconds of real elapsed time since construction (from
    ``time.perf_counter``, so it is monotone and unaffected by system clock
    adjustments).  Unlike the simulated clock it cannot be moved by callers:
    :meth:`advance` and :meth:`advance_to` raise — wall time advances on its
    own.  Used by the backend calibration harness to time real launches.

    >>> clock = WallClock()
    >>> clock.now >= 0.0
    True
    >>> clock.advance(1.0)
    Traceback (most recent call last):
        ...
    repro.errors.ServiceError: a WallClock cannot be advanced; real time advances itself
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()

    @property
    def now(self) -> float:
        """Seconds of real elapsed time since this clock was created."""
        return time.perf_counter() - self._origin

    def advance(self, dt: float) -> float:
        """Unsupported: wall time cannot be moved by callers."""
        raise ServiceError(
            "a WallClock cannot be advanced; real time advances itself"
        )

    def advance_to(self, t: float) -> float:
        """Unsupported: wall time cannot be moved by callers."""
        raise ServiceError(
            "a WallClock cannot be advanced; real time advances itself"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"WallClock(now={self.now!r})"
