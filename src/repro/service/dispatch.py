"""Cost-model-driven backend dispatch for query batches.

The paper's Fig. 6 finding, restated operationally: *which device should
serve a batch depends on the batch size*.  A single query on the GPU pays a
kernel launch plus an unhidden memory-latency critical path (microseconds); a
single query on a CPU core is a handful of cache misses (a tenth of a
microsecond).  At tens of thousands of queries the GPU's bandwidth wins by
orders of magnitude.  ``bridges/hybrid.py`` hard-codes one such choice — swap
the diameter-sensitive phase for a different algorithm — as a one-off; this
module generalizes the idea into a reusable policy object.

:class:`CostModelDispatcher` prices each candidate :class:`Backend` with the
same :func:`~repro.device.context.modeled_kernel_time` roofline model that the
execution layer charges with, using the per-query kernel shape published by
the LCA layer (:data:`repro.lca.INLABEL_QUERY_COST`).  The decision is thus a
comparison of the *actual* modeled costs, not a separately-tuned threshold
that could drift out of sync with the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..device import GTX980, XEON_X5650_SINGLE, DeviceSpec, modeled_kernel_time
from ..errors import ServiceError
from ..lca import INLABEL_QUERY_COST, QueryKernelCost

__all__ = [
    "Backend",
    "CPU_SEQUENTIAL_BACKEND",
    "GPU_BATCH_BACKEND",
    "DEFAULT_BACKENDS",
    "estimate_batch_query_time",
    "CostModelDispatcher",
]


@dataclass(frozen=True)
class Backend:
    """One candidate execution backend for serving query batches.

    ``sequential`` describes how the backend charges a batch: one thread
    working through the queries (the single-core CPU baseline) versus one
    thread per query (the bulk-parallel GPU kernel).  The registry builds the
    matching algorithm flavour (:class:`~repro.lca.SequentialInlabelLCA` vs
    :class:`~repro.lca.InlabelLCA`) from the same distinction.
    """

    key: str
    label: str
    spec: DeviceSpec
    sequential: bool


#: Single-core CPU serving: no launch overhead to speak of, no parallelism.
CPU_SEQUENTIAL_BACKEND = Backend(
    key="cpu1", label="Single-core CPU Inlabel", spec=XEON_X5650_SINGLE,
    sequential=True,
)

#: Bulk-parallel GPU serving: one map kernel over the whole batch.
GPU_BATCH_BACKEND = Backend(
    key="gpu", label="GPU Inlabel", spec=GTX980, sequential=False,
)

#: The paper's two serving endpoints (Fig. 6's extreme curves).
DEFAULT_BACKENDS: Tuple[Backend, ...] = (CPU_SEQUENTIAL_BACKEND, GPU_BATCH_BACKEND)


def estimate_batch_query_time(backend: Backend, batch_size: int, *,
                              cost: QueryKernelCost = INLABEL_QUERY_COST) -> float:
    """Modeled time for ``backend`` to answer one batch of ``batch_size`` queries.

    Mirrors exactly the kernel shapes the two execution flavours charge:
    a sequential backend runs one thread over all queries reading the node
    tables (:meth:`ExecutionContext.sequential`), a parallel backend launches
    one thread per query and also writes the answer array.
    """
    if batch_size < 1:
        raise ServiceError("batch_size must be at least 1")
    q = float(batch_size)
    if backend.sequential:
        return modeled_kernel_time(
            backend.spec, threads=1, ops=cost.ops * q,
            bytes_read=cost.bytes_read * q, bytes_written=0.0,
            launches=1, random_access=True,
        )
    return modeled_kernel_time(
        backend.spec, threads=batch_size, ops=cost.ops * q,
        bytes_read=cost.bytes_read * q, bytes_written=cost.bytes_written * q,
        launches=1, random_access=True,
    )


class CostModelDispatcher:
    """Chooses the cheapest backend for each batch size under the cost model.

    Stateless and cheap: a decision is a handful of float comparisons, so the
    service consults it for every flush.  Ties go to the earlier backend in
    ``backends`` (by convention the CPU, i.e. "don't occupy the accelerator
    unless it actually helps").
    """

    def __init__(self, backends: Sequence[Backend] = DEFAULT_BACKENDS, *,
                 cost: QueryKernelCost = INLABEL_QUERY_COST) -> None:
        if not backends:
            raise ServiceError("dispatcher needs at least one backend")
        keys = [b.key for b in backends]
        if len(set(keys)) != len(keys):
            raise ServiceError(f"backend keys must be unique, got {keys}")
        self.backends: Tuple[Backend, ...] = tuple(backends)
        self.cost = cost
        # choose() is a pure function of the batch size (backends and cost
        # are fixed at construction) and the service consults it once per
        # flush; realized batch sizes repeat heavily, so memoizing turns the
        # per-flush decision into one dict probe.
        self._choice_cache: dict = {}
        self._estimate_cache: dict = {}

    def estimate(self, backend: Backend, batch_size: int) -> float:
        """Modeled serving time of one batch on ``backend``."""
        return estimate_batch_query_time(backend, batch_size, cost=self.cost)

    def estimates(self, batch_size: int) -> Tuple[Tuple[Backend, float], ...]:
        """Every backend with its modeled time for this batch size."""
        return tuple((b, self.estimate(b, batch_size)) for b in self.backends)

    def choose(self, batch_size: int) -> Backend:
        """The backend with the smallest modeled time (ties: earliest listed)."""
        choice = self._choice_cache.get(batch_size)
        if choice is None:
            choice = min(self.estimates(batch_size), key=lambda pair: pair[1])[0]
            self._choice_cache[batch_size] = choice
        return choice

    def choose_with_estimate(self, batch_size: int) -> Tuple[Backend, float]:
        """:meth:`choose` plus the winner's modeled time, equally memoized.

        The trace layer records the estimate as the dispatcher's *predicted*
        batch cost, to compare against the time the batch is later charged.
        """
        cached = self._estimate_cache.get(batch_size)
        if cached is None:
            backend = self.choose(batch_size)
            cached = (backend, self.estimate(backend, batch_size))
            self._estimate_cache[batch_size] = cached
        return cached

    def crossover_batch_size(self, *, max_batch: int = 1 << 24) -> Optional[int]:
        """Smallest batch size whose choice differs from the batch-size-1 choice.

        Found by doubling then bisecting, assuming the decision flips at most
        once over ``[1, max_batch]`` — true for launch-overhead-vs-bandwidth
        trade-offs like CPU/GPU serving.  Returns ``None`` when the choice
        never changes (e.g. a single-backend dispatcher).
        """
        base = self.choose(1)
        hi = 1
        while self.choose(hi) == base:
            if hi >= max_batch:
                return None
            hi = min(hi * 2, max_batch)
        lo = hi // 2  # choose(lo) == base, choose(hi) != base
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.choose(mid) == base:
                lo = mid
            else:
                hi = mid
        return hi

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CostModelDispatcher(backends={[b.key for b in self.backends]})"
