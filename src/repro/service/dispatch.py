"""Cost-model-driven backend dispatch for query batches.

The paper's Fig. 6 finding, restated operationally: *which device should
serve a batch depends on the batch size*.  A single query on the GPU pays a
kernel launch plus an unhidden memory-latency critical path (microseconds); a
single query on a CPU core is a handful of cache misses (a tenth of a
microsecond).  At tens of thousands of queries the GPU's bandwidth wins by
orders of magnitude.  ``bridges/hybrid.py`` hard-codes one such choice — swap
the diameter-sensitive phase for a different algorithm — as a one-off; this
module generalizes the idea into a reusable policy object.

:class:`CostModelDispatcher` prices each candidate :class:`Backend` with the
same :func:`~repro.device.context.modeled_kernel_time` roofline model that the
execution layer charges with, using the per-query kernel shape published by
the LCA layer (:data:`repro.lca.INLABEL_QUERY_COST`).  The decision is thus a
comparison of the *actual* modeled costs, not a separately-tuned threshold
that could drift out of sync with the cost model.

A dispatcher can alternatively price batches from a **measured**
:class:`~repro.backends.calibrate.CalibrationProfile` (``profile=``): the
predicted time becomes the profile's fitted launch-overhead + per-query line
for the backend, as timed on the actual host, and the dispatch crossover
becomes a *derived* quantity of the measurement.  The modeled roofline specs
remain the deterministic default — no profile, no behavior change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..device import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    DeviceSpec,
    modeled_kernel_time,
)
from ..errors import ServiceError
from ..lca import INLABEL_QUERY_COST, QueryKernelCost

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..backends.calibrate import CalibrationProfile

__all__ = [
    "Backend",
    "CPU_SEQUENTIAL_BACKEND",
    "GPU_BATCH_BACKEND",
    "DEFAULT_BACKENDS",
    "make_backend",
    "known_backend_keys",
    "estimate_batch_query_time",
    "CostModelDispatcher",
    "dispatcher_for",
    "load_calibration_profile",
]


@dataclass(frozen=True)
class Backend:
    """One candidate execution backend for serving query batches.

    ``sequential`` describes how the backend charges a batch: one thread
    working through the queries (the single-core CPU baseline) versus one
    thread per query (the bulk-parallel GPU kernel).  The registry builds the
    matching algorithm flavour (:class:`~repro.lca.SequentialInlabelLCA` vs
    :class:`~repro.lca.InlabelLCA`) from the same distinction.

    ``kernel`` optionally names a *real* kernel backend from the
    :mod:`repro.backends` registry; the index registry then compiles that
    backend's kernel as the serving artifact instead of the legacy flavour
    classes.  Empty (the default) keeps the legacy artifact — existing
    configs and replays are untouched.
    """

    key: str
    label: str
    spec: DeviceSpec
    sequential: bool
    kernel: str = ""


#: Single-core CPU serving: no launch overhead to speak of, no parallelism.
CPU_SEQUENTIAL_BACKEND = Backend(
    key="cpu1", label="Single-core CPU Inlabel", spec=XEON_X5650_SINGLE,
    sequential=True,
)

#: Bulk-parallel GPU serving: one map kernel over the whole batch.
GPU_BATCH_BACKEND = Backend(
    key="gpu", label="GPU Inlabel", spec=GTX980, sequential=False,
)

#: The paper's two serving endpoints (Fig. 6's extreme curves).
DEFAULT_BACKENDS: Tuple[Backend, ...] = (CPU_SEQUENTIAL_BACKEND, GPU_BATCH_BACKEND)

#: Serving descriptors for every dispatchable backend, by key.  The modeled
#: endpoints keep their historic keys; the real kernel backends carry their
#: registry key in ``kernel`` so the index registry compiles them.
_BACKEND_PRESETS: Dict[str, Backend] = {
    "cpu1": CPU_SEQUENTIAL_BACKEND,
    "gpu": GPU_BATCH_BACKEND,
    "numpy": Backend(
        key="numpy", label="Vectorized NumPy Inlabel", spec=GTX980,
        sequential=False, kernel="numpy",
    ),
    "numpy-seq": Backend(
        key="numpy-seq", label="Sequential NumPy Inlabel",
        spec=XEON_X5650_SINGLE, sequential=True, kernel="numpy-seq",
    ),
    "smallbatch": Backend(
        key="smallbatch", label="Tuned small-batch Inlabel",
        spec=XEON_X5650_SINGLE, sequential=True, kernel="smallbatch",
    ),
    "pool": Backend(
        key="pool", label="Process-pool Inlabel", spec=XEON_X5650_MULTI,
        sequential=False, kernel="pool",
    ),
}


def known_backend_keys() -> Tuple[str, ...]:
    """Every backend key :func:`make_backend` resolves, sorted."""
    return tuple(sorted(_BACKEND_PRESETS))


def make_backend(key: str) -> Backend:
    """The serving :class:`Backend` descriptor for ``key``.

    Resolves both the modeled endpoints (``"cpu1"``, ``"gpu"``) and the real
    kernel backends (``"numpy"``, ``"numpy-seq"``, ``"smallbatch"``,
    ``"pool"``); configs name backends through this table.
    """
    backend = _BACKEND_PRESETS.get(key)
    if backend is None:
        raise ServiceError(
            f"unknown backend key {key!r}; known: {list(known_backend_keys())}"
        )
    return backend


def estimate_batch_query_time(
    backend: Backend, batch_size: int, *,
    cost: QueryKernelCost = INLABEL_QUERY_COST,
    profile: Optional["CalibrationProfile"] = None,
) -> float:
    """Predicted time for ``backend`` to answer one batch of ``batch_size`` queries.

    With no ``profile`` (the deterministic default) this mirrors exactly the
    kernel shapes the two execution flavours charge: a sequential backend
    runs one thread over all queries reading the node tables
    (:meth:`ExecutionContext.sequential`), a parallel backend launches one
    thread per query and also writes the answer array.

    With a measured ``profile`` the prediction is the backend's fitted
    launch-overhead + per-query cost line instead; pricing a batch outside
    the profile's calibrated range raises a typed
    :class:`~repro.errors.DeviceError` rather than extrapolating.
    """
    if batch_size < 1:
        raise ServiceError("batch_size must be at least 1")
    if profile is not None:
        return profile.predict(backend.key, batch_size)
    q = float(batch_size)
    if backend.sequential:
        return modeled_kernel_time(
            backend.spec, threads=1, ops=cost.ops * q,
            bytes_read=cost.bytes_read * q, bytes_written=0.0,
            launches=1, random_access=True,
        )
    return modeled_kernel_time(
        backend.spec, threads=batch_size, ops=cost.ops * q,
        bytes_read=cost.bytes_read * q, bytes_written=cost.bytes_written * q,
        launches=1, random_access=True,
    )


class CostModelDispatcher:
    """Chooses the cheapest backend for each batch size under the cost model.

    Stateless and cheap: a decision is a handful of float comparisons, so the
    service consults it for every flush.  Ties go to the earlier backend in
    ``backends`` (by convention the CPU, i.e. "don't occupy the accelerator
    unless it actually helps").
    """

    def __init__(self, backends: Sequence[Backend] = DEFAULT_BACKENDS, *,
                 cost: QueryKernelCost = INLABEL_QUERY_COST,
                 profile: Optional["CalibrationProfile"] = None) -> None:
        if not backends:
            raise ServiceError("dispatcher needs at least one backend")
        keys = [b.key for b in backends]
        if len(set(keys)) != len(keys):
            raise ServiceError(f"backend keys must be unique, got {keys}")
        self.backends: Tuple[Backend, ...] = tuple(backends)
        self.cost = cost
        #: Measured calibration profile; ``None`` keeps the modeled pricing.
        self.profile = profile
        if profile is not None:
            # Fail at construction, not mid-serve, if a backend was never
            # calibrated (and pin down the usable batch-size window).
            profile.batch_range(keys)
        # choose() is a pure function of the batch size (backends, cost and
        # profile are fixed at construction) and the service consults it once
        # per flush; realized batch sizes repeat heavily, so memoizing turns
        # the per-flush decision into one dict probe.
        self._choice_cache: dict = {}
        self._estimate_cache: dict = {}

    def estimate(self, backend: Backend, batch_size: int) -> float:
        """Predicted serving time of one batch on ``backend``."""
        return estimate_batch_query_time(
            backend, batch_size, cost=self.cost, profile=self.profile
        )

    def estimates(self, batch_size: int) -> Tuple[Tuple[Backend, float], ...]:
        """Every backend with its modeled time for this batch size."""
        return tuple((b, self.estimate(b, batch_size)) for b in self.backends)

    def choose(self, batch_size: int) -> Backend:
        """The backend with the smallest modeled time (ties: earliest listed)."""
        choice = self._choice_cache.get(batch_size)
        if choice is None:
            choice = min(self.estimates(batch_size), key=lambda pair: pair[1])[0]
            self._choice_cache[batch_size] = choice
        return choice

    def choose_with_estimate(self, batch_size: int) -> Tuple[Backend, float]:
        """:meth:`choose` plus the winner's modeled time, equally memoized.

        The trace layer records the estimate as the dispatcher's *predicted*
        batch cost, to compare against the time the batch is later charged.
        """
        cached = self._estimate_cache.get(batch_size)
        if cached is None:
            backend = self.choose(batch_size)
            cached = (backend, self.estimate(backend, batch_size))
            self._estimate_cache[batch_size] = cached
        return cached

    def crossover_batch_size(self, *, max_batch: int = 1 << 24) -> Optional[int]:
        """Smallest batch size whose choice differs from the batch-size-1 choice.

        Found by doubling then bisecting, assuming the decision flips at most
        once over the scanned range — true for launch-overhead-vs-bandwidth
        trade-offs like CPU/GPU serving, and for fitted
        overhead-plus-slope calibration lines by construction.  Returns
        ``None`` when the choice never changes (e.g. a single-backend
        dispatcher).  Under a measured profile the scan is confined to the
        batch-size window every backend is calibrated over, making the
        crossover a quantity *derived* from the measurement.
        """
        start = 1
        if self.profile is not None:
            lo_cal, hi_cal = self.profile.batch_range(
                [b.key for b in self.backends]
            )
            start = max(start, lo_cal)
            max_batch = min(max_batch, hi_cal)
            if max_batch < start:
                return None
        base = self.choose(start)
        hi = start
        while self.choose(hi) == base:
            if hi >= max_batch:
                return None
            hi = min(hi * 2, max_batch)
        lo = max(hi // 2, start)  # choose(lo) == base, choose(hi) != base
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.choose(mid) == base:
                lo = mid
            else:
                hi = mid
        return hi

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CostModelDispatcher(backends={[b.key for b in self.backends]})"


def load_calibration_profile(path: str) -> "CalibrationProfile":
    """Read a measured :class:`CalibrationProfile` from a JSON file.

    Imported lazily so that the (large) backend package only loads when a
    config actually opts into measured dispatch.
    """
    from ..backends.calibrate import CalibrationProfile

    return CalibrationProfile.load(path)


def dispatcher_for(
    backend_keys: Optional[Sequence[str]],
    calibration_path: Optional[str] = None,
    *,
    profile: Optional["CalibrationProfile"] = None,
    cost: QueryKernelCost = INLABEL_QUERY_COST,
) -> CostModelDispatcher:
    """Build the dispatcher a config's backend fields describe.

    ``backend_keys`` name backends through :func:`make_backend` (``None``
    keeps the modeled CPU/GPU defaults); ``calibration_path`` points at a
    saved profile JSON (``profile`` passes one already loaded — at most one
    of the two).  This is the single seam :class:`~repro.service.service.
    LCAQueryService` and the cluster use to turn
    :class:`~repro.service.config.ServiceConfig` knobs into a dispatcher.
    """
    if calibration_path is not None and profile is not None:
        raise ServiceError(
            "pass either calibration_path or a preloaded profile, not both"
        )
    if calibration_path is not None:
        profile = load_calibration_profile(calibration_path)
    backends = (DEFAULT_BACKENDS if backend_keys is None
                else tuple(make_backend(key) for key in backend_keys))
    return CostModelDispatcher(backends, cost=cost, profile=profile)
