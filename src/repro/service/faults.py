"""Deterministic fault schedules for the cluster serving layer.

This module defines the *fault model* of :class:`~repro.service.cluster.
ClusterService`: a :class:`FaultInjector` holds a time-sorted schedule of
:class:`FaultEvent` records on the same simulated-time axis the cluster's
clocks run on.  The cluster pops due events whenever its frontier advances
(submission, ``advance_to``, ``drain``) and applies them — so fault timing
is exactly as deterministic and replayable as the traffic itself.  Seeded
*random* fault timing (e.g. Poisson-timed transient storms) is produced by
the chaos scenario builders in :mod:`repro.workloads.chaos`, which sample
event times up front and hand the frozen schedule to an injector; nothing
in this module draws randomness at serving time.

Supported actions
-----------------
``kill``
    Mark a replica dead.  Its pending queries are evicted and re-dispatched
    to surviving copies (see ``docs/chaos.md``).
``recover``
    Mark a killed replica live again.
``slowdown``
    Multiply a replica's kernel service times by ``factor`` (``1.0``
    restores full speed).
``transient``
    Arm ``count`` one-shot batch failures on a replica: the next ``count``
    batches it would serve fail and are re-dispatched instead.
``add``
    Scale out: add a fresh replica to the cluster (``replica`` is ignored;
    the new replica takes the next free id).
``retire``
    Scale in: drain a replica and remove it from the hash ring.

>>> events = [
...     FaultEvent(time_s=0.10, action="kill", replica=1),
...     FaultEvent(time_s=0.25, action="recover", replica=1),
... ]
>>> inj = FaultInjector(events)
>>> [e.action for e in inj.advance(0.2)]
['kill']
>>> inj.pending
1
>>> [e.action for e in inj.advance(0.3)]
['recover']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["FAULT_ACTIONS", "FaultEvent", "FaultInjector"]

#: Every action a :class:`FaultEvent` may carry.
FAULT_ACTIONS: Tuple[str, ...] = (
    "kill",
    "recover",
    "slowdown",
    "transient",
    "add",
    "retire",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, pinned to a simulated-time instant.

    ``replica`` identifies the target replica for every action except
    ``add`` (which creates a new replica and ignores it).  ``factor`` is
    only read by ``slowdown``; ``count`` only by ``transient``.

    >>> FaultEvent(time_s=1.0, action="slowdown", replica=0, factor=4.0).factor
    4.0
    >>> FaultEvent(time_s=0.5, action="add").replica
    -1
    """

    time_s: float
    action: str
    replica: int = -1
    factor: float = 1.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {', '.join(FAULT_ACTIONS)}"
            )
        if not self.time_s >= 0.0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time_s!r}")
        if self.action != "add" and self.replica < 0:
            raise ConfigurationError(
                f"{self.action!r} fault needs a replica id >= 0, got {self.replica}"
            )
        if self.action == "slowdown" and not self.factor > 0.0:
            raise ConfigurationError(
                f"slowdown factor must be > 0, got {self.factor!r}"
            )
        if self.action == "transient" and self.count < 1:
            raise ConfigurationError(
                f"transient count must be >= 1, got {self.count}"
            )


@dataclass
class FaultInjector:
    """A time-sorted, replayable schedule of :class:`FaultEvent` records.

    The injector is a passive cursor: :meth:`advance` pops every event due
    at or before ``t`` (stable order — ties keep construction order) and
    returns them; the cluster owns liveness state and applies the effects.
    An injector with an empty schedule is therefore a provable no-op, which
    the test suite exploits for bit-identity checks.

    >>> inj = FaultInjector([FaultEvent(time_s=2.0, action="kill", replica=0)])
    >>> inj.advance(1.0)
    []
    >>> inj.next_time_s
    2.0
    >>> len(inj.advance(2.0))
    1
    >>> inj.pending, inj.applied
    (0, 1)
    """

    events: Iterable[FaultEvent] = ()
    _schedule: Tuple[FaultEvent, ...] = field(init=False, repr=False)
    _cursor: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        ordered = sorted(self.events, key=lambda e: e.time_s)
        self._schedule = tuple(ordered)
        self.events = self._schedule

    @property
    def schedule(self) -> Tuple[FaultEvent, ...]:
        """The full schedule, time-sorted, including already-applied events."""
        return self._schedule

    @property
    def pending(self) -> int:
        """How many events have not been popped yet."""
        return len(self._schedule) - self._cursor

    @property
    def applied(self) -> int:
        """How many events have been popped by :meth:`advance`."""
        return self._cursor

    @property
    def next_time_s(self) -> Optional[float]:
        """The due time of the next unapplied event, or ``None`` if drained."""
        if self._cursor >= len(self._schedule):
            return None
        return self._schedule[self._cursor].time_s

    def advance(self, t: float) -> List[FaultEvent]:
        """Pop and return every event with ``time_s <= t``, oldest first."""
        due: List[FaultEvent] = []
        n = len(self._schedule)
        while self._cursor < n and self._schedule[self._cursor].time_s <= t:
            due.append(self._schedule[self._cursor])
            self._cursor += 1
        return due
