"""Replica placement and load-aware query routing for the serving cluster.

A sharded serving cluster answers two distinct questions for every query:

* **placement** — which replica workers *hold* a dataset (and its cached
  index artifacts).  :class:`HashRing` answers it with consistent hashing:
  each replica owns many pseudo-random points ("virtual nodes") on a hash
  circle, and a dataset lives on the first ``count`` distinct replicas
  clockwise from its own hash.  Adding or removing a replica therefore moves
  only the datasets whose arc the change touches — every other placement is
  bit-identical, which is what keeps index caches warm through resizes;
* **routing** — which of a dataset's copies *serves* a given query or block.
  :class:`Router` is the pluggable policy: :class:`RoundRobinRouter` cycles
  copies, :class:`LeastOutstandingRouter` levels queue depths (the classic
  least-outstanding-requests balancer), and :class:`ConsistentHashRouter`
  pins each dataset to one stable copy for maximal cache affinity
  (rendezvous hashing, so the pick survives copy additions and removals).

All hashing uses :func:`stable_hash` — a keyed BLAKE2b digest, deterministic
across processes, platforms and Python versions — so placements and routes
are reproducible facts of the configuration, never of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ServiceError

__all__ = [
    "stable_hash",
    "HashRing",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "ConsistentHashRouter",
    "ROUTER_POLICIES",
    "make_router",
]


def stable_hash(key: str) -> int:
    """A deterministic 64-bit hash of ``key``, stable across runs and hosts.

    Python's builtin ``hash`` is salted per process; this one is a BLAKE2b
    digest, so ring positions and rendezvous weights are reproducible.

    >>> stable_hash("dataset") == stable_hash("dataset")
    True
    >>> 0 <= stable_hash("dataset") < 2**64
    True
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping dataset names to replica ids.

    Parameters
    ----------
    replica_ids:
        The replicas currently in the cluster (any hashable ints; the
        cluster uses ``0..n-1``).
    vnodes:
        Virtual nodes per replica.  More vnodes smooth the arc lengths (and
        hence the expected placement balance) at the cost of a larger ring;
        64 keeps the max/mean arc ratio low for small clusters.
    """

    def __init__(self, replica_ids: Sequence[int], *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ServiceError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._ids: Tuple[int, ...] = tuple(sorted(set(int(r) for r in replica_ids)))
        if not self._ids:
            raise ServiceError("a hash ring needs at least one replica")
        self._rebuild()

    def _rebuild(self) -> None:
        tokens = np.empty(len(self._ids) * self.vnodes, dtype=np.uint64)
        owners = np.empty(tokens.size, dtype=np.int64)
        pos = 0
        for replica in self._ids:
            for v in range(self.vnodes):
                tokens[pos] = stable_hash(f"replica:{replica}:vnode:{v}")
                owners[pos] = replica
                pos += 1
        order = np.argsort(tokens, kind="stable")
        self._tokens = tokens[order]
        self._owners = owners[order]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def replica_ids(self) -> Tuple[int, ...]:
        """The replicas currently on the ring, ascending.

        >>> HashRing(range(3)).replica_ids
        (0, 1, 2)
        """
        return self._ids

    def add(self, replica_id: int) -> None:
        """Add a replica; only keys landing on its arcs change placement.

        >>> ring = HashRing(range(2))
        >>> ring.add(5)
        >>> ring.replica_ids
        (0, 1, 5)
        """
        if int(replica_id) in self._ids:
            raise ServiceError(f"replica {replica_id} is already on the ring")
        self._ids = tuple(sorted(self._ids + (int(replica_id),)))
        self._rebuild()

    def remove(self, replica_id: int) -> None:
        """Remove a replica; only keys it owned change placement.

        >>> ring = HashRing(range(3))
        >>> ring.remove(1)
        >>> ring.replica_ids
        (0, 2)
        """
        if int(replica_id) not in self._ids:
            raise ServiceError(f"replica {replica_id} is not on the ring")
        if len(self._ids) == 1:
            raise ServiceError("cannot remove the last replica from the ring")
        self._ids = tuple(r for r in self._ids if r != int(replica_id))
        self._rebuild()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, key: str, count: int = 1) -> List[int]:
        """The first ``count`` distinct replicas clockwise from ``key``.

        ``count`` is capped at the number of replicas on the ring.  The
        returned order is the placement order: element 0 is the key's
        *primary* replica, the rest are where additional copies go.

        Placements are deterministic, and adding a replica only moves keys
        onto the newcomer — every other placement is untouched:

        >>> ring = HashRing(range(4))
        >>> ring.place("hot", 2) == ring.place("hot", 2)
        True
        >>> before = {k: ring.place(k)[0] for k in ("a", "b", "c", "d")}
        >>> ring.add(9)
        >>> after = {k: ring.place(k)[0] for k in before}
        >>> all(after[k] in (before[k], 9) for k in before)
        True
        """
        if count < 1:
            raise ServiceError("placement count must be at least 1")
        count = min(count, len(self._ids))
        start = int(np.searchsorted(self._tokens, np.uint64(stable_hash(key))))
        chosen: List[int] = []
        size = self._tokens.size
        for step in range(size):
            owner = int(self._owners[(start + step) % size])
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"HashRing(replicas={self._ids}, vnodes={self.vnodes})"


class Router:
    """Policy choosing which copy of a dataset serves each query.

    Subclasses implement :meth:`route_block`; the per-query
    :meth:`route_one` is the one-row special case.  Routers see the
    dataset's *copies* (replica ids, in placement order) and the current
    *outstanding* queue depth of each copy's worker, and must be
    deterministic functions of those inputs plus their own documented state.
    """

    #: Policy name used by :func:`make_router` and in reports.
    name = "base"

    def route_block(
        self,
        dataset: str,
        copies: Sequence[int],
        outstanding: np.ndarray,
        size: int,
    ) -> np.ndarray:
        """Replica id for each of ``size`` queries (in arrival order).

        >>> import numpy as np
        >>> router = RoundRobinRouter()
        >>> router.route_block("d", (0, 1, 2), np.zeros(3, dtype=np.int64),
        ...                    4).tolist()
        [0, 1, 2, 0]
        """
        raise NotImplementedError

    def route_one(
        self,
        dataset: str,
        copies: Sequence[int],
        outstanding: np.ndarray,
    ) -> int:
        """Replica id for a single query.

        >>> import numpy as np
        >>> RoundRobinRouter().route_one("d", (5, 7), np.zeros(2, dtype=np.int64))
        5
        """
        return int(self.route_block(dataset, copies, outstanding, 1)[0])

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cycle a dataset's copies, one query at a time.

    The cursor is per dataset, so interleaved traffic for different datasets
    does not perturb each dataset's own rotation.  Ignores queue depths.

    >>> import numpy as np
    >>> router = RoundRobinRouter()
    >>> depths = np.zeros(3, dtype=np.int64)
    >>> router.route_block("d", (0, 1, 2), depths, 4).tolist()
    [0, 1, 2, 0]
    >>> router.route_block("d", (0, 1, 2), depths, 2).tolist()  # resumes
    [1, 2]
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor: Dict[str, int] = {}

    def route_block(
        self,
        dataset: str,
        copies: Sequence[int],
        outstanding: np.ndarray,
        size: int,
    ) -> np.ndarray:
        k = len(copies)
        start = self._cursor.get(dataset, 0) % k
        self._cursor[dataset] = (start + size) % k
        idx = (start + np.arange(size, dtype=np.int64)) % k
        return np.asarray(copies, dtype=np.int64)[idx]


class LeastOutstandingRouter(Router):
    """Send each query to the copy with the least outstanding work.

    Semantics (exactly, so tests can assert the assignment): queries are
    assigned one at a time; query ``i`` goes to the copy minimizing
    ``outstanding + assigned so far from this block``, ties broken by
    placement order.  The block form computes that greedy water-filling
    assignment with array arithmetic — no per-query Python loop — by
    materializing each copy's "slot keys" ``outstanding + 0, +1, ...`` and
    taking the ``size`` smallest ``(key, copy)`` pairs in order.

    Queue depths are sampled once per routed block (the cluster snapshots
    them at the block's first arrival), which is how real least-outstanding
    balancers behave: they observe counters, not the future.

    >>> import numpy as np
    >>> router = LeastOutstandingRouter()
    >>> router.route_block("d", (0, 1), np.array([3, 0]), 4).tolist()
    [1, 1, 1, 0]
    """

    name = "least-outstanding"

    def route_block(
        self,
        dataset: str,
        copies: Sequence[int],
        outstanding: np.ndarray,
        size: int,
    ) -> np.ndarray:
        k = len(copies)
        if size == 0:
            return np.empty(0, dtype=np.int64)
        copies_arr = np.asarray(copies, dtype=np.int64)
        if k == 1:
            return np.full(size, copies_arr[0], dtype=np.int64)
        depth = np.asarray(outstanding, dtype=np.int64)
        if depth.shape != (k,):
            raise ServiceError(
                f"outstanding must have one entry per copy ({k}), "
                f"got shape {depth.shape}"
            )
        counts = self._waterfill_counts(depth, size)
        # Copy j's assignments occupy slot keys depth[j] + 0..counts[j]-1;
        # queries are handed out in increasing (key, placement order).
        levels = np.concatenate(
            [depth[j] + np.arange(counts[j], dtype=np.int64) for j in range(k)]
        )
        owner = np.repeat(np.arange(k, dtype=np.int64), counts)
        order = np.lexsort((owner, levels))
        return copies_arr[owner[order]]

    @staticmethod
    def _waterfill_counts(depth: np.ndarray, size: int) -> np.ndarray:
        """How many of ``size`` queries each copy receives under the greedy."""
        # Smallest level L whose strictly-below-L slot supply covers the block.
        def supply(level: int) -> int:
            return int(np.clip(level - depth, 0, None).sum())

        lo = int(depth.min())
        hi = lo + size + 1  # supply(hi) >= size always
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if supply(mid) >= size:
                hi = mid
            else:
                lo = mid
        counts = np.clip(hi - 1 - depth, 0, None).astype(np.int64)
        remainder = size - int(counts.sum())
        if remainder:
            # The last `remainder` assignments sit at level hi-1 exactly, and
            # go to eligible copies in placement order.
            eligible = np.flatnonzero(depth <= hi - 1)
            counts[eligible[:remainder]] += 1
        return counts


class ConsistentHashRouter(Router):
    """Pin every query for a dataset to one stable copy (cache affinity).

    Uses rendezvous (highest-random-weight) hashing over the dataset's
    copies: the winner only changes when the winner itself is added to or
    removed from the copy set, never when an unrelated copy churns.  With a
    replication factor of 1 this is simply "the dataset's only copy"; the
    policy earns its keep on many-dataset workloads, where it maximizes
    per-replica index-cache hit rates at the price of ignoring load.

    >>> import numpy as np
    >>> router = ConsistentHashRouter()
    >>> block = router.route_block("d", (0, 1, 2), np.zeros(3, dtype=np.int64), 5)
    >>> bool((block == block[0]).all())     # every query pinned to one copy
    True
    """

    name = "consistent-hash"

    def route_block(
        self,
        dataset: str,
        copies: Sequence[int],
        outstanding: np.ndarray,
        size: int,
    ) -> np.ndarray:
        winner = max(
            (int(c) for c in copies),
            key=lambda c: (stable_hash(f"route:{dataset}@{c}"), -c),
        )
        return np.full(size, winner, dtype=np.int64)


#: Router policy names accepted by :func:`make_router`.
ROUTER_POLICIES: Tuple[str, ...] = (
    RoundRobinRouter.name,
    LeastOutstandingRouter.name,
    ConsistentHashRouter.name,
)


def make_router(policy: str) -> Router:
    """A fresh router instance for a policy name (see :data:`ROUTER_POLICIES`).

    >>> make_router("least-outstanding").name
    'least-outstanding'
    >>> sorted(ROUTER_POLICIES)
    ['consistent-hash', 'least-outstanding', 'round-robin']
    """
    if policy == RoundRobinRouter.name:
        return RoundRobinRouter()
    if policy == LeastOutstandingRouter.name:
        return LeastOutstandingRouter()
    if policy == ConsistentHashRouter.name:
        return ConsistentHashRouter()
    raise ServiceError(
        f"unknown router policy {policy!r}; known policies: {ROUTER_POLICIES}"
    )
