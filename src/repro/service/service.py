"""The query service: registry + micro-batch scheduler + dispatcher, wired up.

:class:`LCAQueryService` is the subsystem's front door.  Callers register
named trees, submit individual LCA queries with arrival timestamps, and read
back answers by ticket; internally each dataset gets a
:class:`~repro.service.scheduler.MicroBatchScheduler` (all sharing one
simulated clock), every flushed batch is priced by the
:class:`~repro.service.dispatch.CostModelDispatcher` and executed on the
chosen backend's algorithm fetched from — or lazily built into — the
:class:`~repro.service.registry.IndexRegistry`.

The modeled end-to-end latency of a query is::

    (flush_time - arrival_time)        # waiting for the batch to form
    + backend queueing                 # waiting for the device to come free
    + index build time                 # only when the batch hit a cold cache
    + batch execution time             # the backend's modeled kernel time

which is exactly the latency decomposition of a real batched serving system.
Each backend is a single serially occupied device: a batch starts at
``max(flush_time, backend_free_time)``, so offered load beyond a backend's
modeled capacity shows up as growing queueing delay and saturating delivered
throughput rather than as impossible numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..device import ExecutionContext
from ..errors import InvalidQueryError, ServiceError
from .clock import SimulatedClock
from .dispatch import CostModelDispatcher
from .registry import ForestStore, IndexRegistry
from .scheduler import BatchPolicy, FlushedBatch, MicroBatchScheduler
from .stats import ServiceStats, StatsCollector

__all__ = ["LCAQueryService"]


class LCAQueryService:
    """Serves LCA queries against named, index-cached trees in micro-batches.

    Parameters
    ----------
    store:
        Raw dataset store; a fresh empty one by default.
    policy:
        Micro-batching policy applied to every dataset's scheduler.
    dispatcher:
        Backend-choice policy; defaults to CPU-vs-GPU under the roofline
        cost model.
    capacity_bytes:
        Optional index-cache capacity (see :class:`IndexRegistry`).
    clock:
        Simulated time source shared by all schedulers.

    Usage
    -----
    >>> import numpy as np
    >>> from repro.graphs.generators import random_attachment_tree
    >>> from repro.service import LCAQueryService
    >>> svc = LCAQueryService()
    >>> svc.register_tree("t", random_attachment_tree(64, seed=0))
    >>> tickets = [svc.submit("t", x, y, at=i * 1e-6)
    ...            for i, (x, y) in enumerate([(1, 2), (3, 4), (5, 6)])]
    >>> svc.drain()
    >>> answers = svc.results(tickets)
    """

    def __init__(self, store: Optional[ForestStore] = None, *,
                 policy: Optional[BatchPolicy] = None,
                 dispatcher: Optional[CostModelDispatcher] = None,
                 capacity_bytes: Optional[int] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self.store = store or ForestStore()
        self.registry = IndexRegistry(self.store, capacity_bytes=capacity_bytes)
        self.policy = policy or BatchPolicy()
        self.dispatcher = dispatcher or CostModelDispatcher()
        self.stats_collector = StatsCollector()
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._results: Dict[int, int] = {}
        self._latencies: Dict[int, float] = {}
        self._next_ticket = 0
        # When each backend's (single, serially occupied) device next comes
        # free; batches queue behind it.
        self._backend_free_s: Dict[str, float] = {}
        # Tree datasets already in a caller-provided store are servable
        # immediately — they get schedulers just like register_tree()'d ones.
        for name in self.store.names:
            if self.store.has_tree(name):
                self._schedulers[name] = MicroBatchScheduler(self.policy,
                                                             clock=self.clock)

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def register_tree(self, name: str, parents: Optional[np.ndarray] = None, *,
                      loader: Optional[Callable[[], np.ndarray]] = None,
                      validate: bool = False) -> None:
        """Register a named tree and give it a scheduler."""
        self.store.add_tree(name, parents, loader=loader, validate=validate)
        self._schedulers[name] = MicroBatchScheduler(self.policy, clock=self.clock)

    @property
    def datasets(self) -> List[str]:
        """Names of all registered datasets."""
        return list(self._schedulers)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(self, dataset: str, x: int, y: int, *,
               at: Optional[float] = None) -> int:
        """Submit one LCA query; returns a ticket redeemable after its flush.

        ``at`` is the simulated arrival time (monotone across calls); omitted,
        the query arrives at the clock's current instant.  Arrival may trigger
        flushes — on this dataset (size trigger) or on any dataset whose wait
        deadline the advancing clock passed.

        Query nodes are validated here, before the query is accepted (a
        lazily registered tree is materialized by its first submission): a
        bad query is rejected at its own submit call instead of exploding at
        flush time inside a batch of other callers' queries.
        """
        scheduler = self._scheduler(dataset)
        n = self.store.tree(dataset).size
        if not (0 <= int(x) < n and 0 <= int(y) < n):
            raise InvalidQueryError(
                f"query nodes ({x}, {y}) out of range for dataset {dataset!r} "
                f"with {n} nodes"
            )
        t = self.clock.now if at is None else float(at)
        # Serve everything that expired before this arrival, across all
        # datasets, in global flush-time order; the submitted dataset's
        # deadline exactly at t stays pending so this query can join it.
        for name, batch in self._expired_batches(t, exclusive=dataset):
            self._serve(name, batch)
        ticket = self._next_ticket
        self._next_ticket += 1
        self.stats_collector.record_submit()
        for batch in scheduler.submit(ticket, x, y):
            self._serve(dataset, batch)
        return ticket

    def submit_many(self, dataset: str, xs: np.ndarray, ys: np.ndarray, *,
                    at: Optional[np.ndarray] = None) -> np.ndarray:
        """Submit a stream of single queries; returns their tickets.

        This is a convenience loop over :meth:`submit` — each query still goes
        through the scheduler individually (it is *not* a pre-formed batch).
        ``at`` optionally gives each query its own arrival timestamp.
        """
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        if xs.shape != ys.shape:
            raise ServiceError("query arrays must have the same shape")
        if at is not None:
            at = np.atleast_1d(np.asarray(at, dtype=np.float64))
            if at.shape != xs.shape:
                raise ServiceError("timestamp array must match the query arrays")
        tickets = np.empty(xs.size, dtype=np.int64)
        for i in range(xs.size):
            tickets[i] = self.submit(
                dataset, int(xs[i]), int(ys[i]),
                at=None if at is None else float(at[i]),
            )
        return tickets

    def advance_to(self, t: float) -> None:
        """Advance simulated time, serving every wait-expired batch."""
        for name, batch in self._expired_batches(float(t)):
            self._serve(name, batch)

    def drain(self) -> None:
        """Flush and serve everything still queued, on every dataset."""
        for name, scheduler in self._schedulers.items():
            for batch in scheduler.drain():
                self._serve(name, batch)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, ticket: int) -> int:
        """The answer for one ticket (its batch must have been served)."""
        try:
            return self._results[int(ticket)]
        except KeyError:
            if 0 <= int(ticket) < self._next_ticket:
                raise ServiceError(
                    f"ticket {ticket} is still queued; advance time or drain()"
                ) from None
            raise ServiceError(f"unknown ticket {ticket}") from None

    def results(self, tickets) -> np.ndarray:
        """Vector of answers for a sequence of tickets."""
        return np.asarray([self.result(t) for t in np.atleast_1d(tickets)],
                          dtype=np.int64)

    def latency(self, ticket: int) -> float:
        """Modeled end-to-end latency of one answered query."""
        self.result(ticket)  # raises uniformly for unknown/queued tickets
        return self._latencies[int(ticket)]

    def pending_count(self, dataset: Optional[str] = None) -> int:
        """Queries currently queued (for one dataset, or in total)."""
        if dataset is not None:
            return self._scheduler(dataset).pending_count
        return sum(s.pending_count for s in self._schedulers.values())

    def stats(self) -> ServiceStats:
        """Snapshot of the service's accumulated statistics."""
        return self.stats_collector.snapshot(registry=self.registry)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scheduler(self, dataset: str) -> MicroBatchScheduler:
        try:
            return self._schedulers[dataset]
        except KeyError:
            raise ServiceError(
                f"unknown dataset {dataset!r}; register_tree() it first"
            ) from None

    def _expired_batches(self, t: float, exclusive: Optional[str] = None
                         ) -> List[tuple]:
        # One shared clock: advancing it for one dataset fires every other
        # dataset's expired wait deadlines too.  Batches are returned sorted
        # by flush time so they queue on the backends in FIFO order no matter
        # which dataset they came from; for ``exclusive`` (a dataset about to
        # receive a submission at ``t``) deadlines equal to ``t`` are left
        # pending so the arriving query can join them.
        self.clock.advance_to(t)
        collected: List[tuple] = []
        for name, scheduler in self._schedulers.items():
            # An empty scheduler can never flush — skipping it keeps the
            # per-submit cost independent of how many idle datasets exist.
            if scheduler.pending_count == 0:
                continue
            batches = scheduler.advance_to(t, include_equal=name != exclusive)
            collected.extend((name, batch) for batch in batches)
        collected.sort(key=lambda item: item[1].flush_s)
        return collected

    def _serve(self, dataset: str, batch: FlushedBatch) -> None:
        backend = self.dispatcher.choose(batch.size)
        entry, hit = self.registry.fetch(dataset, "lca", backend.spec,
                                         sequential=backend.sequential)
        service_time = 0.0 if hit else entry.build_time_s
        ctx = ExecutionContext(backend.spec)
        answers = entry.artifact.query(batch.xs, batch.ys, ctx=ctx)
        service_time += ctx.elapsed
        # The batch starts once both it is flushed and the device is free;
        # this serializes batches per backend so overload manifests as
        # queueing delay, not as impossible overlapping service times.
        start = max(batch.flush_s, self._backend_free_s.get(backend.key, 0.0))
        completion = start + service_time
        self._backend_free_s[backend.key] = completion
        latencies = completion - batch.arrival_s
        for ticket, answer, lat in zip(batch.tickets, answers, latencies):
            self._results[int(ticket)] = int(answer)
            self._latencies[int(ticket)] = float(lat)
        self.stats_collector.record_batch(
            size=batch.size,
            trigger=batch.trigger,
            backend_key=backend.key,
            service_time_s=service_time,
            latencies_s=latencies,
            first_arrival_s=float(batch.arrival_s.min()),
            completion_s=completion,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"LCAQueryService(datasets={self.datasets}, "
                f"pending={self.pending_count()}, answered={len(self._results)})")
