"""The query service: registry + micro-batch scheduler + dispatcher, wired up.

:class:`LCAQueryService` is the subsystem's front door.  Callers register
named trees, submit LCA queries (one at a time or as column blocks) with
arrival timestamps, and read back answers by ticket; internally each dataset
gets a :class:`~repro.service.scheduler.MicroBatchScheduler` (all sharing one
simulated clock), every flushed batch is priced by the
:class:`~repro.service.dispatch.CostModelDispatcher` and executed on the
chosen backend's algorithm fetched from — or lazily built into — the
:class:`~repro.service.registry.IndexRegistry`.

The modeled end-to-end latency of a query is::

    (flush_time - arrival_time)        # waiting for the batch to form
    + backend queueing                 # waiting for the device to come free
    + index build time                 # only when the batch hit a cold cache
    + batch execution time             # the backend's modeled kernel time

which is exactly the latency decomposition of a real batched serving system.
Each backend is a single serially occupied device: a batch starts at
``max(flush_time, backend_free_time)``, so offered load beyond a backend's
modeled capacity shows up as growing queueing delay and saturating delivered
throughput rather than as impossible numbers.

Host-side, the hot path is *columnar*: tickets are consecutive integers
indexing growable answer/latency tables (so storing a served batch and
resolving :meth:`LCAQueryService.results` are single fancy-indexing
operations), and :meth:`LCAQueryService.submit_many` admits a whole arrival
block through :meth:`MicroBatchScheduler.submit_block` instead of looping
over Python objects — the host cost of forming a batch no longer dwarfs the
modeled kernel cost being scheduled.

An opt-in *skew-aware fast path* (``dedup=True`` / ``answer_cache_bytes=``)
exploits repetition: pairs are canonicalized (LCA is symmetric) and packed
into uint64 keys, blocks are probed against a bounded exact
:class:`~repro.service.cache.AnswerCache` at the front door (hits are
answered at arrival, without queueing for a batch), and batches run the
kernel on their *unique cache misses* only — which is also the count the
dispatcher prices, so key skew moves the CPU/GPU crossover.  Answers are
bit-identical with the fast path on or off.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from ..device import ExecutionContext
from ..errors import InvalidQueryError, ServiceError
from ..graphs.trees import query_bounds_mask
from ..lca.dedup import PACK_LIMIT, pack_query_pairs, unpack_query_pairs
from ..obs.events import (
    EV_ARRIVAL,
    EV_CACHE_HITS,
    EV_CACHE_INSERT,
    EV_CACHE_LANE_HIT,
    EV_CACHE_MISSES,
    EV_CACHE_RESET,
    EV_COMPLETE,
    EV_DISPATCH,
    EV_FLUSH,
    EV_INDEX_EVICT,
    EV_INDEX_LOAD,
    EV_KERNEL_END,
    EV_KERNEL_START,
    TraceRecorder,
)
from .cache import AnswerCache, answer_cache_probe_time
from .clock import SimulatedClock
from .config import ServiceConfig
from .dispatch import Backend, CostModelDispatcher, dispatcher_for
from .registry import ArtifactKey, ForestStore, IndexRegistry
from .scheduler import BatchPolicy, FlushedBatch, MicroBatchScheduler
from .stats import ServiceStats, StatsCollector, grow_table

__all__ = ["LCAQueryService"]

#: Initial ticket-table capacity (grows by doubling).
_MIN_TICKET_TABLE = 1024

#: Backend-lane key full-cache-hit batches are booked under (they occupy the
#: host-side cache lane, not a compute backend).
CACHE_BACKEND_KEY = "cache"


def block_clean_prefix(
    xs: np.ndarray,
    ys: np.ndarray,
    arrivals: np.ndarray,
    *,
    n: int,
    dataset: str,
    now: float,
) -> Tuple[int, Optional[Exception]]:
    """Admissible prefix of a column block, with the first offender's error.

    Replicates the per-query loop's error semantics in bulk: one fused
    bounds check finds every out-of-range query, a backwards arrival is an
    adjacent-difference check against ``now``, and the earliest offender
    wins.  Returns ``(stop, error)`` — admit ``[:stop]``, then raise
    ``error`` (``None`` when the whole block is clean).

    Shared by :meth:`LCAQueryService.submit_many` and the cluster layer's
    block path, which must stay in lockstep for the documented 1-replica
    bit-identical equivalence.
    """
    bad = query_bounds_mask(xs, ys, n)
    stop = int(xs.size)
    error: Optional[Exception] = None
    if bad.any():
        stop = int(bad.argmax())
        error = InvalidQueryError(
            f"query nodes ({xs[stop]}, {ys[stop]}) out of range for "
            f"dataset {dataset!r} with {n} nodes"
        )
    moved_back = np.empty(xs.size, dtype=bool)
    moved_back[0] = arrivals[0] < now
    np.less(arrivals[1:], arrivals[:-1], out=moved_back[1:])
    if moved_back[:stop].any():
        stop = int(moved_back.argmax())
        prev = now if stop == 0 else float(arrivals[stop - 1])
        error = ServiceError(
            f"cannot move the clock backwards (now={prev}, "
            f"requested={float(arrivals[stop])})"
        )
    return stop, error


class LCAQueryService:
    """Serves LCA queries against named, index-cached trees in micro-batches.

    Parameters
    ----------
    store:
        Raw dataset store; a fresh empty one by default.
    config:
        A :class:`~repro.service.config.ServiceConfig` carrying every
        serializable knob in one value.  Mutually exclusive with the
        legacy per-knob kwargs below (``policy``, ``capacity_bytes``,
        ``dedup``, ``answer_cache_bytes``, ``answer_cache_seed``,
        ``ticket_capacity``): passing ``config=`` together with a
        non-default legacy value raises :class:`~repro.errors.ServiceError`.
        Either way the service normalizes onto one internal config,
        exposed as :attr:`config`.
    policy:
        Micro-batching policy applied to every dataset's scheduler.
    dispatcher:
        Backend-choice policy; defaults to CPU-vs-GPU under the roofline
        cost model.
    capacity_bytes:
        Optional index-cache capacity (see :class:`IndexRegistry`).
    clock:
        Simulated time source shared by all schedulers.
    dedup:
        Enable the skew-aware canonicalization path: each batch's pairs are
        sorted to ``x <= y``, packed into uint64 keys and deduplicated, the
        kernel runs on the *unique* pairs only (the dispatcher prices that
        unique count, so the CPU/GPU crossover shifts under skew) and the
        answers are scattered back.  Answers are bit-identical either way
        (LCA is symmetric); off by default.
    answer_cache_bytes:
        Enable the answer cache with this byte budget (implies ``dedup``):
        a bounded, exact, vectorized hash table
        (:class:`~repro.service.cache.AnswerCache`) consulted and populated
        per batch, so pairs repeated *across* batches cost one probe instead
        of a kernel run.  ``None`` (the default) disables it.
    answer_cache_seed:
        Salt seed for the answer cache's slot hash.
    ticket_capacity:
        Optional pre-sizing of the ticket-indexed result tables (capacity
        planning for long streams; growth stays amortized O(1) without it).

    Usage
    -----
    >>> import numpy as np
    >>> from repro.graphs.generators import random_attachment_tree
    >>> from repro.service import LCAQueryService
    >>> svc = LCAQueryService()
    >>> svc.register_tree("t", random_attachment_tree(64, seed=0))
    >>> tickets = svc.submit_many("t", [1, 3, 5], [2, 4, 6],
    ...                           at=np.arange(3) * 1e-6)
    >>> svc.drain()
    >>> answers = svc.results(tickets)
    """

    def __init__(self, store: Optional[ForestStore] = None, *,
                 config: Optional[ServiceConfig] = None,
                 policy: Optional[BatchPolicy] = None,
                 dispatcher: Optional[CostModelDispatcher] = None,
                 capacity_bytes: Optional[int] = None,
                 clock: Optional[SimulatedClock] = None,
                 dedup: bool = False,
                 answer_cache_bytes: Optional[int] = None,
                 answer_cache_seed: int = 0,
                 ticket_capacity: Optional[int] = None,
                 observer: Optional[TraceRecorder] = None) -> None:
        # Single normalization path: legacy kwargs build the same
        # ServiceConfig a config= caller passes; everything below reads
        # from the config only.
        if config is not None:
            conflicts = [
                name for name, given in (
                    ("policy", policy is not None),
                    ("capacity_bytes", capacity_bytes is not None),
                    ("dedup", bool(dedup)),
                    ("answer_cache_bytes", answer_cache_bytes is not None),
                    ("answer_cache_seed", answer_cache_seed != 0),
                    ("ticket_capacity", ticket_capacity is not None),
                ) if given
            ]
            if conflicts:
                raise ServiceError(
                    f"pass configuration via config= or the legacy kwargs, "
                    f"not both (conflicting: {', '.join(conflicts)})"
                )
        else:
            base = policy or BatchPolicy()
            config = ServiceConfig(
                max_batch_size=base.max_batch_size,
                max_wait_s=base.max_wait_s,
                capacity_bytes=capacity_bytes,
                dedup=bool(dedup),
                answer_cache_bytes=answer_cache_bytes,
                answer_cache_seed=int(answer_cache_seed),
                ticket_capacity=ticket_capacity,
            )
        self.config = config
        self.clock = clock or SimulatedClock()
        self._observer: Optional[TraceRecorder] = None
        self._obs_replica = 0
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(int(config.answer_cache_bytes),
                        seed=config.answer_cache_seed)
            if config.answer_cache_bytes is not None else None
        )
        self._dedup = config.dedup or self.answer_cache is not None
        # Whether each dataset's node ids fit the uint64 pair packing
        # (memoized on first serve; oversized trees use the plain path).
        self._packable: Dict[str, bool] = {}
        self.store = store or ForestStore()
        self.registry = IndexRegistry(self.store,
                                      capacity_bytes=config.capacity_bytes)
        self.policy = config.batch_policy()
        # An explicit dispatcher= wins (the cluster passes pre-built ones);
        # otherwise the config's backend fields describe the dispatcher.
        if dispatcher is None:
            if config.backends is not None or config.calibration_path is not None:
                dispatcher = dispatcher_for(config.backends,
                                            config.calibration_path)
            else:
                dispatcher = CostModelDispatcher()
        self.dispatcher = dispatcher
        self.stats_collector = StatsCollector()
        self._schedulers: Dict[str, MicroBatchScheduler] = {}
        self._dataset_rank: Dict[str, int] = {}
        self._next_ticket = 0
        # Ticket-indexed columnar result tables: tickets are consecutive
        # integers, so answers/latencies live in flat arrays and a batch of
        # results is stored (and read back) with one fancy-indexing op.
        # ``ticket_capacity`` pre-sizes them (capacity planning for long
        # streams — growth stays amortized O(1) either way, but reserving
        # keeps the doubling copies out of the serving windows).
        reserve = config.ticket_capacity
        table = max(_MIN_TICKET_TABLE, 0 if reserve is None else int(reserve))
        self._answers = np.empty(table, dtype=np.int64)
        self._latencies = np.empty(table, dtype=np.float64)
        self._answered = np.zeros(table, dtype=bool)
        if reserve is not None:
            self.stats_collector.reserve(int(reserve))
        # Memoized (dataset, backend) -> ArtifactKey for the registry's keyed
        # fast path; rebuilt lazily, invalidation-free (keys are pure values).
        self._artifact_keys: Dict[Tuple[str, str], ArtifactKey] = {}
        # When each backend's (single, serially occupied) device next comes
        # free; batches queue behind it.
        self._backend_free_s: Dict[str, float] = {}
        # Fault-tolerance hooks, all inert by default (a single `is None` /
        # `== 1.0` check on the serving path keeps fault-free runs
        # bit-identical to builds that predate them).  The cluster layer
        # installs the interceptor (captures batches a dead/failing replica
        # must not serve) and the hedge hook (offers a straggling batch to a
        # second copy); ``latency_debt`` re-admissions populate the debt
        # table so retried queries keep their true end-to-end latency.
        self._serve_interceptor: Optional[
            Callable[[str, FlushedBatch], bool]] = None
        self._hedge_hook: Optional[
            Callable[[str, FlushedBatch, float], Optional[float]]] = None
        self._service_factor = 1.0
        self._debt: Optional[np.ndarray] = None
        # Tree datasets already in a caller-provided store are servable
        # immediately — they get schedulers just like register_tree()'d ones.
        for name in self.store.names:
            if self.store.has_tree(name):
                self._add_scheduler(name)
        if observer is not None:
            self.attach_observer(observer)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observer(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, if any."""
        return self._observer

    def attach_observer(self, observer: Optional[TraceRecorder], *,
                        replica: int = 0) -> None:
        """Attach (or detach, with ``None``) a lifecycle trace recorder.

        Every layer of the service starts emitting into it: arrivals and
        completions here, enqueue/flush from each dataset's scheduler,
        dispatch decisions, cache hits/misses/inserts/resets, and index
        registry loads/evictions.  ``replica`` stamps every event (the
        cluster layer assigns each worker its index).  With no observer
        attached — the default — each hook is one ``is None`` check.
        """
        self._observer = observer
        self._obs_replica = int(replica)
        for scheduler in self._schedulers.values():
            scheduler.set_observer(observer, replica=self._obs_replica)
        self.registry.event_hook = (
            self._record_index_event if observer is not None else None
        )

    def _record_index_event(self, event: str, key: ArtifactKey,
                            value: float) -> None:
        obs = self._observer
        if obs is None:  # pragma: no cover - hook detached concurrently
            return
        kind = EV_INDEX_LOAD if event == "load" else EV_INDEX_EVICT
        obs.record(kind, self.clock.now, replica=self._obs_replica,
                   detail=value,
                   aux=obs.intern(f"{key.dataset}/{key.variant or key.kind}"))

    # ------------------------------------------------------------------
    # Fault-tolerance hooks (driven by the cluster layer; inert standalone)
    # ------------------------------------------------------------------
    def set_serve_interceptor(
            self, interceptor: Optional[Callable[[str, FlushedBatch], bool]]
    ) -> None:
        """Install (or remove, with ``None``) a batch-serve interceptor.

        Called as ``interceptor(dataset, batch)`` before every batch would
        execute; returning ``True`` claims the batch — the service skips it
        entirely (no kernel, no answers, no stats).  The cluster layer uses
        this to capture batches on a dead or transiently failing replica and
        re-dispatch them to a surviving copy.
        """
        self._serve_interceptor = interceptor

    def set_hedge_hook(
            self,
            hook: Optional[Callable[[str, FlushedBatch, float],
                                    Optional[float]]],
    ) -> None:
        """Install (or remove) the hedged-dispatch hook.

        Called as ``hook(dataset, batch, completion_s)`` after a kernel
        batch's completion time is known; returning an earlier instant means
        a duplicate execution elsewhere finished first and the batch's
        queries complete then instead.  The original lane stays booked —
        hedging trades duplicate backend work for tail latency.
        """
        self._hedge_hook = hook

    def set_service_factor(self, factor: float) -> None:
        """Scale every subsequent kernel service time by ``factor``.

        The fault injector's ``slowdown`` action routes here; ``1.0``
        restores full speed.

        >>> svc = LCAQueryService()
        >>> svc.set_service_factor(4.0)
        >>> svc.set_service_factor(0.5)
        Traceback (most recent call last):
            ...
        repro.errors.ServiceError: service factor must be >= 1.0, got 0.5
        """
        if not float(factor) >= 1.0:
            raise ServiceError(
                f"service factor must be >= 1.0, got {factor}")
        self._service_factor = float(factor)

    def evict_pending(self) -> Dict[
            str, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Pull every queued query back out, per dataset, without serving it.

        Returns ``{dataset: (tickets, xs, ys, arrival_s)}`` for each dataset
        with a non-empty queue (array copies; the schedulers end up empty).
        The cluster layer calls this when a replica is killed so the
        stranded queries can be re-dispatched to surviving copies.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2, at=0.0)
        >>> sorted(svc.evict_pending())
        ['t']
        >>> svc.pending_count()
        0
        """
        evicted: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]] = {}
        for name, scheduler in self._schedulers.items():
            if scheduler.pending_count:
                evicted[name] = scheduler.evict()
        return evicted

    def debt_of(self, tickets: ArrayLike) -> np.ndarray:
        """Per-ticket latency debt (0.0 for tickets admitted normally).

        A query re-admitted after a replica failure arrives *again* at the
        retry instant; its debt is the gap back to its true first arrival,
        added to the modeled latency when it completes so tail attribution
        survives failover.
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if self._debt is None or idx.size == 0:
            return np.zeros(idx.size, dtype=np.float64)
        return self._debt[idx].copy()

    def serve_hedge(self, dataset: str, xs: np.ndarray, ys: np.ndarray, *,
                    issue_s: float) -> float:
        """Run a duplicate of a straggling batch; return its completion time.

        The hedge is a real execution on this replica: the dispatcher picks
        a backend for the duplicate's size, a cold index pays its build
        time, the kernel runs (answers are discarded — LCA is deterministic,
        so the original batch's answers are bit-identical), the lane is
        serially booked from ``issue_s``, and the duplicate backend time is
        billed to this replica's stats.  Only the completion instant flows
        back; the caller takes ``min(original, hedge)``.
        """
        size = int(np.asarray(xs).size)
        backend = self.dispatcher.choose(size)
        entry, hit = self.registry.fetch_by_key(
            self._artifact_key(dataset, backend), spec=backend.spec)
        service_time = 0.0 if hit else entry.build_time_s
        _, charge = self._charged_query(
            entry.artifact, backend,
            np.asarray(xs, dtype=np.int64), np.asarray(ys, dtype=np.int64),
            size)
        service_time += charge
        if self._service_factor != 1.0:
            service_time *= self._service_factor
        start = max(float(issue_s),
                    self._backend_free_s.get(backend.key, 0.0))
        completion = start + service_time
        self._backend_free_s[backend.key] = completion
        self.stats_collector.record_hedge(service_time)
        obs = self._observer
        if obs is not None:
            obs.record_span(EV_KERNEL_START, EV_KERNEL_END, start, completion,
                            batch=obs.next_batch_id(),
                            replica=self._obs_replica, detail=service_time,
                            aux=obs.intern(backend.key))
        return completion

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def _add_scheduler(self, name: str) -> None:
        self._dataset_rank[name] = len(self._schedulers)
        scheduler = MicroBatchScheduler(self.policy, clock=self.clock)
        if self._observer is not None:
            scheduler.set_observer(self._observer, replica=self._obs_replica)
        self._schedulers[name] = scheduler

    def register_tree(self, name: str, parents: Optional[np.ndarray] = None, *,
                      loader: Optional[Callable[[], np.ndarray]] = None,
                      validate: bool = False) -> None:
        """Register a named tree and give it a scheduler.

        Pass the parent array directly, or a zero-argument ``loader`` for
        lazy materialization on first use.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("eager", np.array([-1, 0, 0]))
        >>> svc.register_tree("lazy", loader=lambda: np.array([-1, 0]))
        >>> svc.datasets
        ['eager', 'lazy']
        """
        self.store.add_tree(name, parents, loader=loader, validate=validate)
        self._add_scheduler(name)

    @property
    def datasets(self) -> List[str]:
        """Names of all registered datasets.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("a", np.array([-1, 0]))
        >>> svc.register_tree("b", np.array([-1, 0, 0]))
        >>> svc.datasets
        ['a', 'b']
        """
        return list(self._schedulers)

    @property
    def tickets_issued(self) -> int:
        """How many tickets have been issued so far (tickets are ``0..n-1``).

        Tickets are consecutive integers, so a caller that records this
        before a submission knows exactly which tickets that submission
        received — including a partially admitted block (the workload
        replay harness uses this to keep per-phase ticket ranges).

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> svc.tickets_issued
        0
        >>> _ = svc.submit_many("t", [1, 2], [2, 1])
        >>> svc.tickets_issued
        2
        """
        return self._next_ticket

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(self, dataset: str, x: int, y: int, *,
               at: Optional[float] = None) -> int:
        """Submit one LCA query; returns a ticket redeemable after its flush.

        ``at`` is the simulated arrival time (monotone across calls); omitted,
        the query arrives at the clock's current instant.  Arrival may trigger
        flushes — on this dataset (size trigger) or on any dataset whose wait
        deadline the advancing clock passed.

        Query nodes are validated here, before the query is accepted (a
        lazily registered tree is materialized by its first submission): a
        bad query is rejected at its own submit call instead of exploding at
        flush time inside a batch of other callers' queries.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> svc.submit("t", 2, 3)       # tickets count up from 0
        0
        >>> svc.drain(); svc.result(0)  # LCA of nodes 2 and 3 is the root
        0
        """
        scheduler = self._scheduler(dataset)
        n = self.store.tree(dataset).size
        if not (0 <= int(x) < n and 0 <= int(y) < n):
            raise InvalidQueryError(
                f"query nodes ({x}, {y}) out of range for dataset {dataset!r} "
                f"with {n} nodes"
            )
        t = self.clock.now if at is None else float(at)
        # Serve everything that expired before this arrival, across all
        # datasets, in global flush-time order; the submitted dataset's
        # deadline exactly at t stays pending so this query can join it.
        for name, batch in self._expired_batches(t, exclusive=dataset):
            self._serve(name, batch)
        ticket = self._next_ticket
        self._next_ticket += 1
        self._ensure_ticket_capacity(self._next_ticket)
        self.stats_collector.record_submit()
        if self._observer is not None:
            self._observer.record(EV_ARRIVAL, t, ticket=ticket,
                                  replica=self._obs_replica)
        for batch in scheduler.submit(ticket, x, y):
            self._serve(dataset, batch)
        return ticket

    def submit_many(self, dataset: str, xs: np.ndarray, ys: np.ndarray, *,
                    at: Optional[np.ndarray] = None,
                    latency_debt: Optional[np.ndarray] = None) -> np.ndarray:
        """Submit a column block of single queries; returns their tickets.

        With the skew-aware path off (the default), observationally
        equivalent to calling :meth:`submit` once per query — each query is
        still an individual arrival seen by the scheduler, *not* a
        pre-formed batch — but admission is columnar: the block is validated
        with vectorized comparisons, cut into flush-sized chunks by
        :meth:`MicroBatchScheduler.submit_block`, and every resulting batch is
        served in the same global flush-time order the per-query path
        produces.  ``at`` optionally gives each query its own (non-decreasing)
        arrival timestamp.  With the answer cache on the two admission styles
        diverge observably (answers stay exact): only the columnar path takes
        the front-door memoization, so its cache hits are answered at arrival
        instead of at batch flush (see :meth:`_admit_memoized`).

        Error semantics match the per-query loop exactly: an out-of-range
        query or a backwards arrival raises at its own position, after every
        query before it has been admitted (and possibly served).

        ``latency_debt`` (cluster failover only) gives each query latency
        already accrued before this re-admission — the gap between its true
        first arrival and the retry instant ``at`` carries.  Debt is added
        to the modeled latency at completion, and a debt-carrying block
        always takes the standard scheduler path (no front-door
        memoization): a retried query re-queues like any other arrival.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> tickets = svc.submit_many("t", [1, 2], [3, 3],
        ...                           at=np.array([0.0, 1e-6]))
        >>> svc.drain()
        >>> svc.results(tickets).tolist()   # LCA(1,3)=1, LCA(2,3)=0
        [1, 0]
        """
        scheduler = self._scheduler(dataset)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        if xs.shape != ys.shape:
            raise ServiceError("query arrays must have the same shape")
        if at is not None:
            at = np.atleast_1d(np.asarray(at, dtype=np.float64))
            if at.shape != xs.shape:
                raise ServiceError("timestamp array must match the query arrays")
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        n = self.store.tree(dataset).size
        if at is None:
            arrivals = np.full(xs.size, self.clock.now, dtype=np.float64)
        else:
            arrivals = at

        # Admissible prefix: the per-query loop raises at the first
        # offending index after admitting everything before it — replicate
        # that by admitting the clean prefix, then raising the same error.
        stop, error = block_clean_prefix(xs, ys, arrivals, n=n,
                                         dataset=dataset, now=self.clock.now)

        tickets = np.arange(self._next_ticket, self._next_ticket + stop,
                            dtype=np.int64)
        if stop:
            self._next_ticket += stop
            self._ensure_ticket_capacity(self._next_ticket)
            self.stats_collector.record_submit(stop)
            if self._observer is not None:
                self._observer.record_block(EV_ARRIVAL, arrivals[:stop],
                                            tickets,
                                            replica=self._obs_replica)
            if latency_debt is not None:
                debt = np.atleast_1d(np.asarray(latency_debt,
                                                dtype=np.float64))
                if debt.shape != xs.shape:
                    raise ServiceError(
                        "latency_debt array must match the query arrays")
                # Tickets are consecutive: store the block's debt with one
                # slice assignment before anything can flush and serve it.
                if self._debt is None:
                    self._debt = np.zeros(self._answers.size,
                                          dtype=np.float64)
                self._debt[int(tickets[0]):int(tickets[-1]) + 1] = debt[:stop]
            handled = (
                latency_debt is None
                and self.answer_cache is not None
                and self._is_packable(dataset)
                and self._admit_memoized(dataset, scheduler, tickets,
                                         xs[:stop], ys[:stop],
                                         arrivals[:stop])
            )
            if not handled:
                own = scheduler.submit_block(tickets, xs[:stop], ys[:stop],
                                             arrivals[:stop])
                self._serve_in_submission_order(dataset, own, arrivals[:stop],
                                                int(tickets[0]))
        if error is not None:
            raise error
        return tickets

    def advance_to(self, t: float, *, joining: Optional[str] = None) -> None:
        """Advance simulated time, serving every wait-expired batch.

        ``joining`` names a dataset about to receive a submission at exactly
        ``t``: its wait deadlines equal to ``t`` are left pending so the
        arriving query can still join them (the same rule :meth:`submit`
        applies internally).  The cluster layer uses this to pre-advance
        replica workers to an arrival instant without perturbing the batch
        the arrival belongs to.

        >>> svc = LCAQueryService(policy=BatchPolicy(max_batch_size=8,
        ...                                          max_wait_s=1e-3))
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2, at=0.0)
        >>> svc.advance_to(2e-3)        # past the 1 ms wait deadline
        >>> svc.result(t)
        0
        """
        for name, batch in self._expired_batches(float(t), exclusive=joining):
            self._serve(name, batch)

    def sync_to(self, t: float) -> None:
        """Advance to ``t``, serving only deadlines *strictly* before ``t``.

        Deadlines exactly at ``t`` stay pending — they can still be joined
        by an arrival at ``t`` or be drained at ``t`` with the ``drain``
        trigger, exactly as if time had been advanced one submission at a
        time.  The cluster layer uses this to align a lagging replica clock
        with the cluster frontier at a drain boundary; on a replica whose
        clock already sits at ``t`` it is a no-op (every strictly earlier
        deadline was flushed by the submission that advanced the clock).

        >>> svc = LCAQueryService(policy=BatchPolicy(max_batch_size=8,
        ...                                          max_wait_s=1e-3))
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2, at=0.0)
        >>> svc.sync_to(1e-3)           # deadline exactly at t stays pending
        >>> svc.pending_count("t")
        1
        >>> svc.advance_to(1e-3)        # inclusive semantics: now it flushes
        >>> svc.pending_count("t")
        0
        """
        for name, batch in self._expired_batches(float(t), include_equal=False):
            self._serve(name, batch)

    def drain(self) -> None:
        """Flush and serve everything still queued, on every dataset.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0]))
        >>> t = svc.submit("t", 0, 1)
        >>> svc.drain()
        >>> svc.pending_count()
        0
        """
        for name, scheduler in self._schedulers.items():
            for batch in scheduler.drain():
                self._serve(name, batch)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, ticket: int) -> int:
        """The answer for one ticket (its batch must have been served).

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2)
        >>> svc.drain()
        >>> svc.result(t)
        0
        >>> svc.result(99)
        Traceback (most recent call last):
            ...
        repro.errors.ServiceError: unknown ticket 99
        """
        t = int(ticket)
        if not 0 <= t < self._next_ticket:
            raise ServiceError(f"unknown ticket {ticket}")
        if not self._answered[t]:
            raise ServiceError(
                f"ticket {ticket} is still queued; advance time or drain()"
            )
        return int(self._answers[t])

    def results(self, tickets: ArrayLike) -> np.ndarray:
        """Vector of answers for a sequence of tickets (one table lookup).

        Raises :class:`ServiceError` exactly as :meth:`result` would for the
        first unknown or still-queued ticket in the sequence.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> tickets = svc.submit_many("t", [3, 2], [1, 3])
        >>> svc.drain()
        >>> svc.results(tickets).tolist()
        [1, 0]
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        unknown = (idx < 0) | (idx >= self._next_ticket)
        if unknown.any():
            raise ServiceError(f"unknown ticket {idx[int(unknown.argmax())]}")
        queued = ~self._answered[idx]
        if queued.any():
            raise ServiceError(
                f"ticket {idx[int(queued.argmax())]} is still queued; "
                f"advance time or drain()"
            )
        return self._answers[idx]

    def answered(self, tickets: ArrayLike) -> np.ndarray:
        """Boolean mask over ``tickets``: which have been served already.

        Unlike :meth:`results` this never raises for still-queued tickets —
        it is the non-throwing probe the cluster layer uses to report the
        first still-queued ticket of a cross-replica sequence in the caller's
        order.  Unknown tickets still raise :class:`ServiceError`.

        >>> svc = LCAQueryService(policy=BatchPolicy(max_batch_size=2,
        ...                                          max_wait_s=1.0))
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> a, b, c = [svc.submit("t", 1, 2) for _ in range(3)]
        >>> svc.answered([a, b, c]).tolist()   # size flush served a and b
        [True, True, False]
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if idx.size == 0:
            return np.empty(0, dtype=bool)
        unknown = (idx < 0) | (idx >= self._next_ticket)
        if unknown.any():
            raise ServiceError(f"unknown ticket {idx[int(unknown.argmax())]}")
        return self._answered[idx]

    def latency(self, ticket: int) -> float:
        """Modeled end-to-end latency of one answered query.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2)
        >>> svc.drain()
        >>> svc.latency(t) > 0.0       # waiting + queueing + execution
        True
        """
        self.result(ticket)  # raises uniformly for unknown/queued tickets
        return float(self._latencies[int(ticket)])

    def latencies(self, tickets: ArrayLike) -> np.ndarray:
        """Vector of modeled latencies for a sequence of answered tickets.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> tickets = svc.submit_many("t", [1, 2], [2, 1])
        >>> svc.drain()
        >>> bool((svc.latencies(tickets) > 0.0).all())
        True
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        # Same validation as results(), without gathering the answers.
        unknown = (idx < 0) | (idx >= self._next_ticket)
        if unknown.any():
            raise ServiceError(f"unknown ticket {idx[int(unknown.argmax())]}")
        queued = ~self._answered[idx]
        if queued.any():
            raise ServiceError(
                f"ticket {idx[int(queued.argmax())]} is still queued; "
                f"advance time or drain()"
            )
        return self._latencies[idx]

    def pending_count(self, dataset: Optional[str] = None) -> int:
        """Queries currently queued (for one dataset, or in total).

        >>> svc = LCAQueryService(policy=BatchPolicy(max_batch_size=8,
        ...                                          max_wait_s=1.0))
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> t = svc.submit("t", 1, 2)
        >>> svc.pending_count("t"), svc.pending_count()
        (1, 1)
        """
        if dataset is not None:
            return self._scheduler(dataset).pending_count
        return sum(s.pending_count for s in self._schedulers.values())

    def stats(self) -> ServiceStats:
        """Snapshot of the service's accumulated statistics.

        >>> svc = LCAQueryService()
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> _ = svc.submit_many("t", [1, 2], [2, 1])
        >>> svc.drain()
        >>> svc.stats().queries_answered
        2
        """
        return self.stats_collector.snapshot(registry=self.registry,
                                             answer_cache=self.answer_cache)

    # ------------------------------------------------------------------
    # Online tuning
    # ------------------------------------------------------------------
    def apply_tuning(self, *, max_batch_size: Optional[int] = None,
                     max_wait_s: Optional[float] = None,
                     dataset: Optional[str] = None) -> ServiceConfig:
        """Hot-swap the safe-to-retune batching knobs at a flush boundary.

        Only the :attr:`ServiceConfig.TUNABLE` subset can move mid-stream
        (``None`` leaves a knob unchanged); structural knobs — cache
        budgets, dedup, ticket capacity — are fixed at construction.  The
        swap happens *now* on the simulated clock and never touches an
        already-flushed batch: each scheduler's pending window is re-judged
        under the new policy (see :meth:`MicroBatchScheduler.retune`) and
        any batches the swap forces out — queries made late by a shorter
        wait, windows made oversized by a smaller batch bound — are served
        immediately, in flush-time order.  Answers are bit-identical under
        any retuning schedule; only batching (and therefore latency and
        cost) changes.

        ``dataset`` scopes the swap to one dataset's scheduler — a
        *priority lane*: the named lane keeps its own policy until the
        next global (``dataset=None``) swap resets every lane.  Lane
        overrides do not change :attr:`config` (the global default that
        newly registered datasets inherit).

        Returns :attr:`config` after the call.

        >>> svc = LCAQueryService(config=ServiceConfig(max_batch_size=8,
        ...                                            max_wait_s=1.0))
        >>> svc.register_tree("t", np.array([-1, 0, 0]))
        >>> tickets = [svc.submit("t", 1, 2, at=i * 1e-4) for i in range(3)]
        >>> svc.apply_tuning(max_batch_size=2).max_batch_size  # forces a flush
        2
        >>> svc.answered(tickets).tolist()
        [True, True, False]
        """
        changes: Dict[str, object] = {}
        if max_batch_size is not None:
            changes["max_batch_size"] = int(max_batch_size)
        if max_wait_s is not None:
            changes["max_wait_s"] = float(max_wait_s)
        if not changes:
            return self.config
        if dataset is None:
            self.config = self.config.derive(**changes)
            policy = self.config.batch_policy()
            self.policy = policy
            targets = list(self._schedulers.items())
        else:
            scheduler = self._scheduler(dataset)
            base = scheduler.policy
            policy = BatchPolicy(
                max_batch_size=int(
                    changes.get("max_batch_size", base.max_batch_size)),
                max_wait_s=float(
                    changes.get("max_wait_s", base.max_wait_s)),
            )
            targets = [(dataset, scheduler)]
        collected: List[Tuple[float, int, str, FlushedBatch]] = []
        for name, scheduler in targets:
            for batch in scheduler.retune(policy):
                collected.append((batch.flush_s, self._dataset_rank[name],
                                  name, batch))
        collected.sort(key=lambda item: item[:2])
        for _, _, name, batch in collected:
            self._serve(name, batch)
        return self.config

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_ticket_capacity(self, needed: int) -> None:
        if needed <= self._answers.size:
            return
        # Callers bump _next_ticket before growing, so the count of live
        # slots can already exceed the old capacity — copy the whole table.
        used = self._answers.size
        self._answers = grow_table(self._answers, used, needed)
        self._latencies = grow_table(self._latencies, used, needed)
        self._answered = grow_table(self._answered, used, needed)
        if self._debt is not None:
            # The debt table must stay zero beyond the used region (it is
            # only ever written for retried tickets), so it grows by
            # zero-filled reallocation rather than grow_table's np.empty.
            debt = np.zeros(self._answers.size, dtype=np.float64)
            debt[:used] = self._debt
            self._debt = debt

    def _scheduler(self, dataset: str) -> MicroBatchScheduler:
        try:
            return self._schedulers[dataset]
        except KeyError:
            raise ServiceError(
                f"unknown dataset {dataset!r}; register_tree() it first"
            ) from None

    def _expired_batches(self, t: float, exclusive: Optional[str] = None,
                         include_equal: bool = True) -> List[tuple]:
        # One shared clock: advancing it for one dataset fires every other
        # dataset's expired wait deadlines too.  Batches are returned sorted
        # by flush time so they queue on the backends in FIFO order no matter
        # which dataset they came from; for ``exclusive`` (a dataset about to
        # receive a submission at ``t``) deadlines equal to ``t`` are left
        # pending so the arriving query can join them, and with
        # ``include_equal=False`` they are left pending on *every* dataset
        # (the :meth:`sync_to` semantics).
        self.clock.advance_to(t)
        collected: List[tuple] = []
        for name, scheduler in self._schedulers.items():
            # An empty scheduler can never flush — skipping it keeps the
            # per-submit cost independent of how many idle datasets exist.
            if scheduler.pending_count == 0:
                continue
            batches = scheduler.advance_to(
                t, include_equal=include_equal and name != exclusive)
            collected.extend((name, batch) for batch in batches)
        collected.sort(key=lambda item: item[1].flush_s)
        return collected

    def _serve_in_submission_order(self, dataset: str, own: List[FlushedBatch],
                                   arrivals: np.ndarray, first_ticket: int
                                   ) -> None:
        """Serve a block's own batches plus other datasets' expired ones.

        The per-query path serves batches at well-defined points of the
        submission loop: at query ``i`` it first serves every batch whose
        wait deadline the arrival reached — the submitted dataset's strictly
        (deadline < t_i), other datasets' inclusively (deadline <= t_i), all
        sorted by flush time with ties broken by dataset registration order —
        and then the size-completed batch the arriving query just filled, if
        any.  Reconstruct exactly that order from the merged batch lists:
        each batch gets (serving query index, phase, flush time, dataset
        rank) as its sort key, where phase 0 is the deadline sweep and
        phase 1 the size flush.
        """
        merged: List[Tuple[int, int, float, int, str, FlushedBatch]] = []
        own_rank = self._dataset_rank[dataset]
        for batch in own:
            if batch.trigger == "size":
                # Served right after the query that completed the batch.
                at_query = int(batch.tickets[-1]) - first_ticket
                phase = 1
            else:
                # A wait flush fires at the first arrival strictly past the
                # deadline (arrival exactly at the deadline joins the batch).
                at_query = int(np.searchsorted(arrivals, batch.flush_s,
                                               side="right"))
                phase = 0
            merged.append((at_query, phase, batch.flush_s, own_rank,
                           dataset, batch))
        need_sort = False
        t_last = float(arrivals[-1])
        for name, scheduler in self._schedulers.items():
            if name == dataset or scheduler.pending_count == 0:
                continue
            for batch in scheduler.advance_to(t_last, include_equal=True):
                # Other datasets' deadlines fire at the first arrival at or
                # past them.
                at_query = int(np.searchsorted(arrivals, batch.flush_s,
                                               side="left"))
                merged.append((at_query, 0, batch.flush_s,
                               self._dataset_rank[name], name, batch))
                need_sort = True
        if need_sort:
            merged.sort(key=lambda item: item[:4])
        for _, _, _, _, name, batch in merged:
            self._serve(name, batch)

    def _is_packable(self, dataset: str) -> bool:
        ok = self._packable.get(dataset)
        if ok is None:
            ok = int(self.store.tree(dataset).size) <= PACK_LIMIT
            self._packable[dataset] = ok
        return ok

    def _admit_memoized(self, dataset: str, scheduler: MicroBatchScheduler,
                        tickets: np.ndarray, xs: np.ndarray, ys: np.ndarray,
                        arrivals: np.ndarray) -> bool:
        """Front-door memoization for the columnar path.

        With the answer cache on, a block is probed *at admission*: queries
        whose canonical pair is already cached are answered immediately on
        the host-side cache lane — they never enter the batching pipeline,
        which is both the standard serving architecture (memoize before you
        queue) and the realistic latency model (a memoized answer does not
        wait for a batch to form).  Only the cache misses are handed to the
        micro-batch scheduler; their batches probe again at serve time (a
        sibling batch may have filled the cache in between) and repopulate
        it.  Returns False when nothing hit — the caller then admits the
        whole block through the standard path unchanged.

        Cache-off behaviour is untouched, and answers are bit-identical
        either way; what changes with the cache on is *when* repeated
        queries are answered (at arrival) and that only unique misses reach
        the kernel.
        """
        cache = self.answer_cache
        assert cache is not None
        # Batches whose wait deadline expired before this block's first
        # arrival flush earlier on the simulated timeline, so they serve —
        # and populate the cache — before the block is probed (deadlines
        # falling *inside* the block's arrival span are served after the
        # probe, an acknowledged approximation of the per-arrival
        # interleaving; answers are exact either way).
        for name, batch in self._expired_batches(float(arrivals[0]),
                                                 exclusive=dataset):
            self._serve(name, batch)
        keys = pack_query_pairs(xs, ys)
        space = self._dataset_rank[dataset]
        values, found, hits = cache.lookup(space, keys)
        obs = self._observer
        if hits == 0:
            if obs is not None:
                obs.record(EV_CACHE_MISSES, float(arrivals[-1]),
                           replica=self._obs_replica,
                           detail=float(tickets.size))
            return False
        t_last = float(arrivals[-1])
        full = hits == int(tickets.size)
        # The hits are answered straight from the cache: the bulk probe
        # occupies the serially-booked host-side cache lane (starting once
        # both the block has arrived and the lane is free), and a memoized
        # answer's modeled latency is one per-query probe plus any lane
        # queueing — never a batching wait.  Tickets are a contiguous
        # range, so the whole block is stored with slice assignments
        # *before* any miss batch serves — miss rows carry unanswered
        # placeholders (``found`` is exactly the answered mask) that their
        # batches overwrite when they serve.
        probe_time = answer_cache_probe_time(int(tickets.size))
        probe_one = answer_cache_probe_time(1)
        start = max(t_last, self._backend_free_s.get(CACHE_BACKEND_KEY, 0.0))
        completion = start + probe_time
        self._backend_free_s[CACHE_BACKEND_KEY] = completion
        hit_latency = (start - t_last) + probe_one
        if obs is not None:
            # The front-door hits form a pseudo-batch on the cache lane:
            # flush at the probe instant, kernel span for the bulk probe,
            # one cache_lane_hit completion per answered ticket.
            obs.record(EV_CACHE_HITS, t_last, replica=self._obs_replica,
                       detail=float(hits))
            if not full:
                obs.record(EV_CACHE_MISSES, t_last,
                           replica=self._obs_replica,
                           detail=float(int(tickets.size) - hits))
            pseudo = obs.next_batch_id()
            obs.record(EV_FLUSH, t_last, batch=pseudo,
                       replica=self._obs_replica, detail=float(hits),
                       aux=obs.intern("hit"))
            obs.record_span(EV_KERNEL_START, EV_KERNEL_END, start, completion,
                            batch=pseudo, replica=self._obs_replica,
                            detail=probe_time,
                            aux=obs.intern(CACHE_BACKEND_KEY))
            hit_tickets = tickets if full else tickets[found]
            obs.record_block(EV_CACHE_LANE_HIT, completion, hit_tickets,
                             batch=pseudo, replica=self._obs_replica,
                             detail=hit_latency)
        lo, hi = int(tickets[0]), int(tickets[-1]) + 1
        self._answers[lo:hi] = values
        self._latencies[lo:hi] = hit_latency
        if full:
            self._answered[lo:hi] = True
            own: List[FlushedBatch] = []
        else:
            self._answered[lo:hi] = found
            miss_pos = np.flatnonzero(~found)
            own = scheduler.submit_block(tickets[miss_pos], xs[miss_pos],
                                         ys[miss_pos], arrivals[miss_pos])
        self.stats_collector.record_batch(
            size=hits,
            trigger="hit",
            backend_key=CACHE_BACKEND_KEY,
            service_time_s=probe_time,
            latencies_s=np.full(hits, hit_latency),
            first_arrival_s=float(arrivals[0]),
            completion_s=completion,
            kernel_queries=0,
        )
        # The block's arrivals moved time to its last timestamp: fire every
        # wait deadline that expired on the way (this dataset's pending
        # misses and other datasets alike) and serve everything in
        # flush-time order.  As on every submit path, this dataset's
        # deadlines exactly at the arrival instant stay pending so a
        # same-instant follow-up submission can still join them.
        own_rank = self._dataset_rank[dataset]
        collected = [(batch.flush_s, own_rank, dataset, batch)
                     for batch in own]
        for name, batch in self._expired_batches(t_last, exclusive=dataset):
            collected.append((batch.flush_s, self._dataset_rank[name], name,
                              batch))
        collected.sort(key=lambda item: item[:2])
        for _, _, name, batch in collected:
            self._serve(name, batch)
        return True

    def _serve(self, dataset: str, batch: FlushedBatch) -> None:
        if (self._serve_interceptor is not None
                and self._serve_interceptor(dataset, batch)):
            # The interceptor claimed the batch (dead or transiently failing
            # replica): it is re-dispatched by the cluster layer, not served
            # here.
            return
        if self._dedup and self._is_packable(dataset):
            self._serve_deduped(dataset, batch)
            return
        if self._observer is not None:
            backend, predicted = self.dispatcher.choose_with_estimate(
                batch.size)
            self._observer.record(EV_DISPATCH, batch.flush_s,
                                  batch=batch.batch_id,
                                  replica=self._obs_replica,
                                  detail=predicted,
                                  aux=self._observer.intern(backend.key))
        else:
            backend = self.dispatcher.choose(batch.size)
        entry, hit = self.registry.fetch_by_key(
            self._artifact_key(dataset, backend), spec=backend.spec)
        service_time = 0.0 if hit else entry.build_time_s
        answers, charge = self._charged_query(entry.artifact, backend,
                                              batch.xs, batch.ys, batch.size)
        service_time += charge
        self._finish_batch(batch, answers, service_time, backend.key,
                           batch.size, dataset=dataset)

    def _serve_deduped(self, dataset: str, batch: FlushedBatch) -> None:
        """The skew-aware fast path: canonicalize, dedup, probe, kernel misses.

        Every batch pays a small modeled host-side probe charge
        (:func:`~repro.service.cache.answer_cache_probe_time`, covering
        canonicalization + table probe); the kernel then runs only on the
        *unique miss* pairs, priced by the dispatcher at that unique count —
        which is how key skew moves the CPU/GPU crossover.  A batch answered
        entirely from the cache never touches a compute backend: it is booked
        on the host-side ``"cache"`` lane.
        """
        cache = self.answer_cache
        obs = self._observer
        keys = pack_query_pairs(batch.xs, batch.ys)
        service_time = answer_cache_probe_time(batch.size)
        if cache is not None:
            space = self._dataset_rank[dataset]
            answers, found, hits = cache.lookup(space, keys)
            if obs is not None:
                if hits:
                    obs.record(EV_CACHE_HITS, batch.flush_s,
                               batch=batch.batch_id,
                               replica=self._obs_replica, detail=float(hits))
                if hits < batch.size:
                    obs.record(EV_CACHE_MISSES, batch.flush_s,
                               batch=batch.batch_id,
                               replica=self._obs_replica,
                               detail=float(batch.size - hits))
            if hits == batch.size:
                self._finish_batch(batch, answers, service_time,
                                   CACHE_BACKEND_KEY, 0, dataset=dataset)
                return
            miss = np.flatnonzero(~found)
            miss_keys = keys[miss]
        else:
            miss = None
            miss_keys = keys
        kernel_queries = 0
        if miss_keys.size:
            unique_keys, inverse = np.unique(miss_keys, return_inverse=True)
            ux, uy = unpack_query_pairs(unique_keys)
            kernel_queries = int(unique_keys.size)
            if obs is not None:
                backend, predicted = self.dispatcher.choose_with_estimate(
                    kernel_queries)
                obs.record(EV_DISPATCH, batch.flush_s, batch=batch.batch_id,
                           replica=self._obs_replica, detail=predicted,
                           aux=obs.intern(backend.key))
            else:
                backend = self.dispatcher.choose(kernel_queries)
            entry, hit = self.registry.fetch_by_key(
                self._artifact_key(dataset, backend), spec=backend.spec)
            if not hit:
                service_time += entry.build_time_s
            unique_answers, charge = self._charged_query(
                entry.artifact, backend, ux, uy, kernel_queries)
            service_time += charge
            if cache is not None:
                resets_before = cache.resets
                cache.insert(space, unique_keys, unique_answers)
                if obs is not None:
                    obs.record(EV_CACHE_INSERT, batch.flush_s,
                               batch=batch.batch_id,
                               replica=self._obs_replica,
                               detail=float(kernel_queries))
                    if cache.resets != resets_before:
                        obs.record(EV_CACHE_RESET, batch.flush_s,
                                   replica=self._obs_replica,
                                   detail=float(cache.resets - resets_before))
                answers[miss] = unique_answers[inverse]
            else:
                answers = unique_answers[inverse]
            lane = backend.key
        else:
            lane = CACHE_BACKEND_KEY
        self._finish_batch(batch, answers, service_time, lane, kernel_queries,
                           dataset=dataset)

    def _store_results(self, idx: np.ndarray, answers: np.ndarray,
                       latencies: np.ndarray) -> None:
        """Write one served group into the ticket-indexed result tables.

        Tickets within a group are ascending; single-dataset streams issue
        consecutive ones, so the common case is a contiguous table window
        stored with slice assignments (bulk copies) instead of fancy-index
        scatters.
        """
        lo, hi = int(idx[0]), int(idx[-1]) + 1
        if hi - lo == idx.size:
            self._answers[lo:hi] = answers
            self._latencies[lo:hi] = latencies
            self._answered[lo:hi] = True
        else:
            self._answers[idx] = answers
            self._latencies[idx] = latencies
            self._answered[idx] = True

    def _finish_batch(self, batch: FlushedBatch, answers: np.ndarray,
                      service_time: float, backend_key: str,
                      kernel_queries: int, *,
                      dataset: Optional[str] = None) -> None:
        if self._service_factor != 1.0:
            # An injected slowdown stretches kernel time (degraded device);
            # the host-side cache lane is unaffected.
            if backend_key != CACHE_BACKEND_KEY:
                service_time *= self._service_factor
        # The batch starts once both it is flushed and its lane is free;
        # this serializes batches per backend so overload manifests as
        # queueing delay, not as impossible overlapping service times.
        start = max(batch.flush_s, self._backend_free_s.get(backend_key, 0.0))
        completion = start + service_time
        self._backend_free_s[backend_key] = completion
        effective = completion
        if (self._hedge_hook is not None and dataset is not None
                and backend_key != CACHE_BACKEND_KEY):
            # Offer the straggler to a second copy; an earlier duplicate
            # completion wins for the queries, the original lane stays
            # booked (the work is duplicated, not cancelled — the kernel
            # span below still shows the full original occupancy).
            hedged = self._hedge_hook(dataset, batch, completion)
            if hedged is not None and hedged < completion:
                effective = hedged
        latencies = effective - batch.arrival_s
        if self._debt is not None:
            # Retried queries carry the latency accrued before this
            # (re-)admission; everyone else's slot is zero.
            latencies = latencies + self._debt[batch.tickets]
        obs = self._observer
        if obs is not None:
            lane = obs.intern(backend_key)
            obs.record_span(EV_KERNEL_START, EV_KERNEL_END, start, completion,
                            batch=batch.batch_id, replica=self._obs_replica,
                            detail=service_time, aux=lane)
            # ``own=True``: batch tickets and the fresh latency array are
            # never mutated after this point.
            obs.record_block(EV_COMPLETE, effective, batch.tickets,
                             batch=batch.batch_id,
                             replica=self._obs_replica, detail=latencies,
                             own=True)
        self._store_results(batch.tickets, answers, latencies)
        self.stats_collector.record_batch(
            size=batch.size,
            trigger=batch.trigger,
            backend_key=backend_key,
            service_time_s=service_time,
            latencies_s=latencies,
            # Batch arrivals are non-decreasing by construction, so the
            # first element is the minimum — no reduction pass needed.
            first_arrival_s=float(batch.arrival_s[0]),
            completion_s=effective,
            kernel_queries=kernel_queries,
        )

    def _artifact_key(self, dataset: str, backend: Backend) -> ArtifactKey:
        cached = self._artifact_keys.get((dataset, backend.key))
        if cached is None:
            # A backend naming a real kernel gets its own per-backend
            # artifact (the registry compiles that kernel); the modeled
            # endpoints keep the legacy flavour variants.
            variant = backend.kernel or (
                "sequential" if backend.sequential else "parallel"
            )
            cached = ArtifactKey(dataset, "lca", backend.spec.name, variant)
            self._artifact_keys[(dataset, backend.key)] = cached
        return cached

    def _charged_query(self, artifact: Any, backend: Backend,
                       xs: np.ndarray, ys: np.ndarray,
                       batch_size: int) -> Tuple[np.ndarray, float]:
        """Run the kernel; return ``(answers, charged_time)``.

        With no calibration profile on the dispatcher the charge is the
        modeled :class:`ExecutionContext` elapsed time (bit-identical to the
        historic path).  With a measured profile the charge is the profile's
        prediction for this backend and batch size — the same number the
        dispatcher compared during backend choice, preserving the serving
        invariant that the dispatch estimate equals the booked charge.
        """
        if getattr(self.dispatcher, "profile", None) is None:
            ctx = ExecutionContext(backend.spec)
            answers = artifact.query(xs, ys, ctx=ctx)
            return answers, ctx.elapsed
        answers = artifact.query(xs, ys)
        return answers, self.dispatcher.estimate(backend, batch_size)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (f"LCAQueryService(datasets={self.datasets}, "
                f"pending={self.pending_count()}, "
                f"answered={int(self._answered[:self._next_ticket].sum())})")
