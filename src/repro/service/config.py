"""Typed, serializable configuration objects for the serving stack.

The serving layers grew one keyword argument at a time:
:class:`~repro.service.service.LCAQueryService` and
:class:`~repro.service.cluster.ClusterService` each take a hand-set sprawl
of knobs (batch policy, cache budgets, dedup, admission limit, hedging,
retries, router policy).  :class:`ServiceConfig` and :class:`ClusterConfig`
consolidate that sprawl into frozen dataclasses that

* validate eagerly (construction reuses the same checks the services run,
  so a bad config fails where it is written, not where it is used);
* derive cheaply — :meth:`ServiceConfig.derive` is ``dataclasses.replace``
  with validation, the idiom for "this run, but with a bigger batch";
* round-trip through plain dicts and JSON
  (:meth:`ServiceConfig.to_dict` / :meth:`ServiceConfig.from_json`), so a
  benchmark manifest can pin the exact configuration it measured;
* name the *safe-to-retune* subset (:attr:`ServiceConfig.TUNABLE`): the
  knobs ``apply_tuning()`` may hot-swap at a flush boundary while a replay
  is in flight.  Structural knobs (cache budgets, dedup) are deliberately
  excluded — changing them would invalidate carved-out byte budgets or
  already-issued tickets.  The cluster's replica count *is* tunable:
  it lands through a drain-before-retire membership transition
  (``ClusterService.scale_to``) rather than a hot swap, which is what
  makes reactive autoscaling answer-preserving.

Router policies are stored as string keys (the
:data:`~repro.service.routing.ROUTER_POLICIES` names), which is what makes
:class:`ClusterConfig` fully serializable.

>>> cfg = ServiceConfig(max_batch_size=256, max_wait_s=2e-4)
>>> cfg.derive(max_batch_size=512).max_batch_size
512
>>> ServiceConfig.from_json(cfg.to_json()) == cfg
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, FrozenSet, Optional, Tuple, Type, TypeVar

from ..errors import ServiceError
from .routing import LeastOutstandingRouter
from .scheduler import BatchPolicy

__all__ = ["ServiceConfig", "ClusterConfig"]

C = TypeVar("C", bound="_ConfigBase")


def _normalize_backends(config: Any) -> None:
    """Validate and canonicalize a config's ``backends`` field in place.

    JSON round-trips turn tuples into lists; coerce back to a tuple (the
    frozen dataclasses need a hashable, immutable value) and reject empty or
    duplicated backend sets eagerly.
    """
    if config.backends is None:
        return
    keys = tuple(str(key) for key in config.backends)
    if not keys:
        raise ServiceError("backends must name at least one backend (or None)")
    if len(set(keys)) != len(keys):
        raise ServiceError(f"backend keys must be unique, got {list(keys)}")
    object.__setattr__(config, "backends", keys)


@dataclass(frozen=True)
class _ConfigBase:
    """Shared derivation + serialization machinery of the config objects."""

    #: Field names ``apply_tuning()`` may hot-swap mid-stream (subclasses
    #: override; everything else is fixed at construction).
    TUNABLE: ClassVar[FrozenSet[str]] = frozenset()

    def derive(self: C, **changes: Any) -> C:
        """A copy with ``changes`` applied (``dataclasses.replace`` + checks).

        >>> ServiceConfig().derive(max_wait_s=5e-4).max_wait_s
        0.0005
        >>> ServiceConfig().derive(max_batch_size=0)
        Traceback (most recent call last):
            ...
        repro.errors.ServiceError: max_batch_size must be at least 1
        """
        unknown = set(changes) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ServiceError(
                f"unknown {type(self).__name__} fields: {sorted(unknown)}"
            )
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """The config as a plain dict (JSON-safe; bench-manifest shape).

        >>> ServiceConfig(max_batch_size=64).to_dict()["max_batch_size"]
        64
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls: Type[C], data: Dict[str, Any]) -> C:
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`~repro.errors.ServiceError` — a manifest
        written by a different version should fail loudly, not half-apply.

        >>> ServiceConfig.from_dict({"max_batch_size": 64}).max_batch_size
        64
        >>> ServiceConfig.from_dict({"max_batch": 64})
        Traceback (most recent call last):
            ...
        repro.errors.ServiceError: unknown ServiceConfig fields: ['max_batch']
        """
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ServiceError(
                f"unknown {cls.__name__} fields: {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        """The config as a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls: Type[C], text: str) -> C:
        """Rebuild a config from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ServiceError(
                f"{cls.__name__} JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)


@dataclass(frozen=True)
class ServiceConfig(_ConfigBase):
    """Everything a :class:`LCAQueryService` is configured by, in one value.

    The non-serializable collaborators (store, dispatcher, clock, observer)
    stay constructor arguments — they are live objects, not configuration.

    >>> cfg = ServiceConfig(max_batch_size=128, max_wait_s=1e-4, dedup=True)
    >>> cfg.batch_policy()
    BatchPolicy(max_batch_size=128, max_wait_s=0.0001)
    >>> sorted(ServiceConfig.TUNABLE)
    ['max_batch_size', 'max_wait_s']
    """

    #: Micro-batching knobs (see :class:`~repro.service.scheduler.BatchPolicy`).
    max_batch_size: int = 1024
    max_wait_s: float = 1e-3
    #: Index-cache byte budget (``None`` = unbounded).
    capacity_bytes: Optional[int] = None
    #: Skew-aware canonicalization + intra-batch dedup path.
    dedup: bool = False
    #: Answer-cache byte budget (``None`` disables; implies ``dedup``).
    answer_cache_bytes: Optional[int] = None
    answer_cache_seed: int = 0
    #: Pre-sizing of the ticket-indexed result tables (``None`` = grow).
    ticket_capacity: Optional[int] = None
    #: Backend keys the dispatcher prices (resolved through
    #: :func:`~repro.service.dispatch.make_backend`); ``None`` keeps the
    #: modeled CPU/GPU default pair.
    backends: Optional[Tuple[str, ...]] = None
    #: Path to a measured calibration-profile JSON
    #: (:class:`~repro.backends.calibrate.CalibrationProfile`); ``None``
    #: keeps the deterministic modeled pricing.
    calibration_path: Optional[str] = None

    TUNABLE: ClassVar[FrozenSet[str]] = frozenset(
        {"max_batch_size", "max_wait_s"}
    )

    def __post_init__(self) -> None:
        # BatchPolicy owns the batching-knob invariants; constructing one
        # here means config validation can never drift from the scheduler's.
        BatchPolicy(max_batch_size=self.max_batch_size,
                    max_wait_s=self.max_wait_s)
        if self.capacity_bytes is not None and int(self.capacity_bytes) < 1:
            raise ServiceError("capacity_bytes must be positive (or None)")
        if self.ticket_capacity is not None and int(self.ticket_capacity) < 0:
            raise ServiceError("ticket_capacity must be non-negative (or None)")
        _normalize_backends(self)

    def batch_policy(self) -> BatchPolicy:
        """The :class:`BatchPolicy` this config describes.

        >>> ServiceConfig(max_batch_size=8).batch_policy().max_batch_size
        8
        """
        return BatchPolicy(max_batch_size=self.max_batch_size,
                           max_wait_s=self.max_wait_s)


@dataclass(frozen=True)
class ClusterConfig(_ConfigBase):
    """Everything a :class:`ClusterService` is configured by, in one value.

    ``router`` is a policy *name* (one of
    :data:`~repro.service.routing.ROUTER_POLICIES`, resolved through
    :func:`~repro.service.routing.make_router` at construction), not an
    instance — that is what keeps the whole config JSON-serializable.  A
    custom :class:`~repro.service.routing.Router` instance can still be
    passed to :class:`ClusterService` via the legacy ``router=`` kwarg.

    >>> cfg = ClusterConfig(n_replicas=4, router="round-robin",
    ...                     max_pending=8192)
    >>> ClusterConfig.from_dict(cfg.to_dict()) == cfg
    True
    >>> sorted(ClusterConfig.TUNABLE)
    ['hedge_delay_s', 'max_batch_size', 'max_pending', 'max_wait_s', 'n_replicas']
    """

    n_replicas: int = 4
    #: Micro-batching knobs applied to every replica worker's schedulers.
    max_batch_size: int = 1024
    max_wait_s: float = 1e-3
    #: Router policy name (see :data:`ROUTER_POLICIES`).
    router: str = LeastOutstandingRouter.name
    #: Cluster-wide cache byte budget, split across the workers.
    capacity_bytes: Optional[int] = None
    #: Cluster-wide bound on queued queries (``None`` = no admission control).
    max_pending: Optional[int] = None
    start_time: float = 0.0
    dedup: bool = False
    #: Cluster-wide answer-cache budget, split per replica (implies dedup).
    answer_cache_bytes: Optional[int] = None
    #: Hedged-dispatch delay (``None`` disables hedging).
    hedge_delay_s: Optional[float] = None
    max_retries: int = 3
    #: Backend keys every worker's dispatcher prices (``None`` = defaults).
    backends: Optional[Tuple[str, ...]] = None
    #: Measured calibration-profile JSON path (``None`` = modeled pricing).
    calibration_path: Optional[str] = None

    #: ``n_replicas`` joined the tunable set with reactive autoscaling:
    #: ``apply_tuning(n_replicas=...)`` lands through ``scale_to()`` —
    #: a drain-before-retire membership transition, not a hot swap, but
    #: equally answer-preserving.
    TUNABLE: ClassVar[FrozenSet[str]] = frozenset(
        {"max_batch_size", "max_wait_s", "hedge_delay_s", "max_pending",
         "n_replicas"}
    )

    def __post_init__(self) -> None:
        BatchPolicy(max_batch_size=self.max_batch_size,
                    max_wait_s=self.max_wait_s)
        if int(self.n_replicas) < 1:
            raise ServiceError("a cluster needs at least one replica")
        if self.max_pending is not None and int(self.max_pending) < 1:
            raise ServiceError("max_pending must be positive (or None)")
        if self.hedge_delay_s is not None and float(self.hedge_delay_s) <= 0:
            raise ServiceError("hedge_delay_s must be positive (or None)")
        if int(self.max_retries) < 1:
            raise ServiceError("max_retries must be at least 1")
        if self.capacity_bytes is not None and int(self.capacity_bytes) < 1:
            raise ServiceError("capacity_bytes must be positive (or None)")
        _normalize_backends(self)

    def batch_policy(self) -> BatchPolicy:
        """The :class:`BatchPolicy` every worker's schedulers run under.

        >>> ClusterConfig(max_wait_s=2e-4).batch_policy().max_wait_s
        0.0002
        """
        return BatchPolicy(max_batch_size=self.max_batch_size,
                           max_wait_s=self.max_wait_s)

    def service_config(self, *, capacity_bytes: Optional[int] = None,
                       answer_cache_bytes: Optional[int] = None
                       ) -> ServiceConfig:
        """The per-worker :class:`ServiceConfig` this cluster config implies.

        The cluster carves its cluster-wide byte budgets into per-replica
        slices; callers pass the already-carved slices here.

        >>> ClusterConfig(dedup=True).service_config().dedup
        True
        """
        return ServiceConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            capacity_bytes=capacity_bytes,
            dedup=self.dedup,
            answer_cache_bytes=answer_cache_bytes,
            backends=self.backends,
            calibration_path=self.calibration_path,
        )
