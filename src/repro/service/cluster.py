"""Sharded serving cluster: replica workers, load-aware routing, backpressure.

:class:`ClusterService` fronts N replica workers, each a full
:class:`~repro.service.service.LCAQueryService` with its own
:class:`~repro.service.scheduler.MicroBatchScheduler` per dataset, its own
:class:`~repro.service.dispatch.CostModelDispatcher` (and therefore its own
CPU/GPU backend pair), and its own slice of the cluster's index-cache byte
budget.  On top of the workers the cluster adds the three things a single
node cannot provide:

* **replication + placement** — a dataset registered with ``replicas=k`` is
  pinned onto ``k`` workers chosen by a consistent-hash ring
  (:class:`~repro.service.routing.HashRing`), so hot datasets exist in
  multiple index caches and cold ones cost one;
* **load-aware routing** — a pluggable
  :class:`~repro.service.routing.Router` picks which copy serves each query
  or column block (round-robin, least-outstanding-work, or consistent-hash
  for maximal cache affinity);
* **admission control** — an optional cluster-wide bound on queued queries.
  Submissions past the bound are rejected with the typed
  :class:`~repro.errors.Overloaded` error and counted into the cluster's
  shed rate, so overload is an explicit, observable contract instead of an
  unbounded queue;
* **fault tolerance + elasticity** — an optional seeded
  :class:`~repro.service.faults.FaultInjector` drives replica kills,
  recoveries, slowdowns and transient batch failures at exact simulated
  instants.  Batches stranded on a failed replica are re-dispatched to a
  surviving copy (capped retries; the typed
  :class:`~repro.errors.ReplicaDown` fires when no copy survives), so no
  admitted query is ever silently lost.  A configurable ``hedge_delay_s``
  re-issues straggling batches to a second copy and takes the first
  completion.  :meth:`ClusterService.add_replica` and
  :meth:`ClusterService.retire_replica` grow and shrink the cluster live,
  with consistent-hash re-placement and drain-before-retire semantics.

Time: every worker runs on its own :class:`SimulatedClock` cursor along the
*same* simulated time axis; the cluster's own clock is the frontier (the
latest arrival admitted anywhere).  Because every flush deadline, queueing
delay and completion is computed from explicit timestamps, a worker whose
cursor lags simply materializes its (identical) flushes at its next event —
the modeled batches, latencies and statistics are bit-reproducible functions
of the submitted trace, exactly as on a single node.  With one replica the
cluster *is* the single node: every routed call degenerates to the same
sequence of worker calls, so answers, latencies and per-replica statistics
are bit-identical to a plain :class:`LCAQueryService` fed the same stream.

The columnar fast path survives sharding end to end: a block submitted via
:meth:`ClusterService.submit_many` is validated with one fused bounds check,
routed with one vectorized policy call, cut into per-replica sub-blocks with
a stable argsort + ``searchsorted`` (each sub-block preserves arrival
order), and admitted through each worker's vectorized
:meth:`~repro.service.service.LCAQueryService.submit_many`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np
from numpy.typing import ArrayLike

from ..errors import InvalidQueryError, Overloaded, ReplicaDown, ServiceError
from ..graphs.trees import validate_parents
from ..obs.events import (
    EV_FAULT,
    EV_HEDGE,
    EV_MEMBERSHIP,
    EV_RETRY,
    EV_SCALE,
    EV_SHED,
    TraceRecorder,
)
from .cache import MIN_CACHE_BYTES
from .clock import SimulatedClock
from .config import ClusterConfig, ServiceConfig
from .dispatch import (
    CostModelDispatcher,
    dispatcher_for,
    load_calibration_profile,
)
from .faults import FaultEvent, FaultInjector
from .routing import HashRing, LeastOutstandingRouter, Router, make_router
from .scheduler import BatchPolicy, FlushedBatch
from .service import LCAQueryService, block_clean_prefix
from .stats import ServiceStats, dedup_factor, grow_table, hit_rate

__all__ = ["ClusterService", "ClusterStats"]

#: Initial cluster ticket-table capacity (grows by doubling).
_MIN_TICKET_TABLE = 1024


class _SharedLoader:
    """Memoizing wrapper so one lazy loader feeds every copy of a dataset.

    Each replica's :class:`~repro.service.registry.ForestStore` calls the
    wrapper independently; the underlying loader runs (and the result is
    validated) exactly once, and every copy shares the same parent array.
    A loader failure leaves the wrapper unfilled, so the dataset stays
    retryable on every copy.
    """

    def __init__(self, loader: Callable[[], np.ndarray], validate: bool) -> None:
        self._loader = loader
        self._validate = validate
        self._parents: Optional[np.ndarray] = None

    def __call__(self) -> np.ndarray:
        if self._parents is None:
            parents = np.asarray(self._loader(), dtype=np.int64)
            if self._validate:
                validate_parents(parents)
            self._parents = parents
        return self._parents


@dataclass(frozen=True)
class ClusterStats:
    """Immutable cluster-wide snapshot aggregated over replica workers.

    Latency percentiles are computed over the *merged* per-query latency
    tables of all replicas — they are exact, not an approximation stitched
    from per-replica percentiles.  ``replicas`` keeps the full per-worker
    :class:`~repro.service.stats.ServiceStats` for drill-down.
    """

    #: How many replica workers the cluster runs.
    n_replicas: int
    #: Router policy name the cluster was serving with.
    router_policy: str
    #: Queries offered = submitted (admitted) + shed by admission control.
    queries_offered: int
    queries_submitted: int
    queries_shed: int
    queries_answered: int
    #: Fraction of offered queries rejected with :class:`Overloaded`.
    shed_rate: float
    batches_flushed: int
    #: Modeled end-to-end latency over all answered queries, all replicas.
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    latency_max_s: float
    #: Simulated span from the earliest arrival to the latest completion
    #: anywhere in the cluster.
    span_s: float
    #: Total modeled backend busy time across replicas.
    busy_time_s: float
    #: Index-cache accounting summed over the replicas' registries.
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    #: Answer-cache accounting summed over the replicas' per-replica caches
    #: (all zero when the skew-aware path is disabled).
    answer_cache_hits: int
    answer_cache_misses: int
    answer_cache_hit_rate: float
    #: Answered queries per kernel-executed query, cluster-wide (1.0 with the
    #: skew-aware path off; ``inf`` when every answer came from a cache).
    dedup_factor: float
    #: Answered-query count per replica, and max/mean of that distribution
    #: (1.0 = perfectly balanced; idle replicas inflate it; 0.0 before any
    #: answer).
    per_replica_answered: Tuple[int, ...]
    load_imbalance: float
    #: Per-worker snapshots, in replica-id order.
    replicas: Tuple[ServiceStats, ...]
    #: Fault-tolerance accounting — all zero on a fault-free, hedge-free run.
    #: ``queries_retried`` counts re-dispatches of admitted queries after a
    #: replica kill or transient batch failure (a query retried twice counts
    #: twice); retried queries are *not* double-counted in
    #: ``queries_submitted``.
    queries_retried: int = 0
    #: Hedged duplicate dispatches issued, and how many finished before the
    #: original (and therefore set the query's completion time).
    hedges_issued: int = 0
    hedges_won: int = 0
    #: Fault-injector events applied (kills, recoveries, slowdowns,
    #: transients, membership changes driven by the schedule).
    faults_injected: int = 0
    #: Live topology changes (:meth:`ClusterService.add_replica` /
    #: :meth:`ClusterService.retire_replica`), however triggered.
    membership_events: int = 0
    #: Provisioned capacity on the simulated clock: each replica accrues
    #: from its construction (or :meth:`ClusterService.add_replica`) until
    #: its retirement (or the snapshot instant).  Killed-but-not-retired
    #: replicas still accrue — they are provisioned even while down.  This
    #: is the cost denominator reactive autoscaling is charged by.
    replica_seconds: float = 0.0

    @property
    def throughput_qps(self) -> float:
        """Answered queries per second of cluster simulated span."""
        if self.span_s <= 0:
            return float("inf") if self.queries_answered else 0.0
        return self.queries_answered / self.span_s

    def format(self) -> str:
        """Render the cluster snapshot as an aligned text block."""
        answered = " ".join(str(c) for c in self.per_replica_answered)
        lines = [
            f"replicas           : {self.n_replicas} "
            f"({self.router_policy} router)",
            f"queries            : {self.queries_answered}/"
            f"{self.queries_submitted} answered, {self.queries_shed} shed "
            f"({self.shed_rate:.1%} of {self.queries_offered} offered)",
            f"batches            : {self.batches_flushed}",
            f"latency p50/p99    : {self.latency_p50_s * 1e6:.2f} / "
            f"{self.latency_p99_s * 1e6:.2f} us "
            f"(max {self.latency_max_s * 1e6:.2f} us)",
            f"throughput         : {self.throughput_qps:,.0f} queries/s "
            f"over {self.span_s * 1e3:.3f} ms span",
            f"backend busy time  : {self.busy_time_s * 1e3:.3f} ms modeled",
            f"index caches       : {self.cache_hits} hits / "
            f"{self.cache_misses} misses ({self.cache_hit_rate:.1%})",
            f"answer caches      : {self.answer_cache_hits} hits / "
            f"{self.answer_cache_misses} misses "
            f"({self.answer_cache_hit_rate:.1%}), "
            f"dedup factor {self.dedup_factor:.2f}x",
            f"per-replica load   : [{answered}] "
            f"(imbalance {self.load_imbalance:.2f}x)",
        ]
        if (
            self.faults_injected
            or self.queries_retried
            or self.hedges_issued
            or self.membership_events
        ):
            lines.append(
                f"fault tolerance    : {self.faults_injected} faults applied, "
                f"{self.queries_retried} queries retried, "
                f"{self.hedges_won}/{self.hedges_issued} hedges won, "
                f"{self.membership_events} membership changes"
            )
        return "\n".join(lines)


class ClusterService:
    """Serves LCA queries across N replica workers behind one front door.

    Parameters
    ----------
    n_replicas:
        Number of replica workers.  Each owns its schedulers, dispatcher
        (hence its own modeled CPU/GPU pair) and index-registry slice.
    config:
        A :class:`~repro.service.config.ClusterConfig` carrying every
        serializable knob (including ``n_replicas`` and the router policy
        name) in one value.  Mutually exclusive with ``n_replicas`` and
        the legacy per-knob kwargs: passing ``config=`` together with any
        of them raises :class:`~repro.errors.ServiceError`.  Either way
        the cluster normalizes onto one internal config, exposed as
        :attr:`config`.
    policy:
        Micro-batching policy applied to every worker's schedulers.
    router:
        Routing policy choosing which copy of a dataset serves each query:
        a :class:`~repro.service.routing.Router` instance or one of the
        :data:`~repro.service.routing.ROUTER_POLICIES` string keys
        (resolved through :func:`~repro.service.routing.make_router`).
        Defaults to :class:`~repro.service.routing.LeastOutstandingRouter`.
    dispatcher_factory:
        Zero-argument callable building each worker's dispatcher (called
        once per replica so workers never share memoization state).
    capacity_bytes:
        Cluster-wide cache byte budget, split evenly across the workers'
        registries.  ``None`` means unbounded.  When ``answer_cache_bytes``
        is also set, the answer caches' bytes come out of this budget: the
        index registries split what remains.
    dedup:
        Enable the skew-aware canonicalization + intra-batch dedup path on
        every worker (see :class:`LCAQueryService`).
    answer_cache_bytes:
        Cluster-wide answer-cache budget, split evenly into one
        :class:`~repro.service.cache.AnswerCache` per replica worker
        (implies ``dedup``).  ``None`` (the default) disables the caches.
    max_pending:
        Cluster-wide bound on queued queries.  Submissions that would
        exceed it raise :class:`~repro.errors.Overloaded` and are counted
        as shed.  ``None`` disables admission control.
    start_time:
        Initial simulated time for the cluster and every worker clock.
    fault_injector:
        Optional :class:`~repro.service.faults.FaultInjector` whose
        schedule is applied as simulated time passes.  A cluster with an
        *empty* injector behaves bit-identically to one with ``None`` —
        all liveness state lives here, the injector only carries the
        schedule.
    hedge_delay_s:
        Enable hedged dispatch: a batch whose queueing delay on its lane
        exceeds this many simulated seconds is re-issued to another live
        copy and the earlier completion wins.  Derive it from a fault-free
        p99 for the classic tail-cutting policy.  ``None`` (default)
        disables hedging.
    max_retries:
        Per-query cap on failover re-dispatches before
        :class:`~repro.errors.ReplicaDown` is raised.

    Usage
    -----
    >>> import numpy as np
    >>> from repro.graphs.generators import random_attachment_tree
    >>> from repro.service import ClusterService
    >>> cluster = ClusterService(4)
    >>> placement = cluster.register_tree("t", random_attachment_tree(64, seed=0),
    ...                                   replicas=4)
    >>> tickets = cluster.submit_many("t", [1, 3, 5], [2, 4, 6],
    ...                               at=np.arange(3) * 1e-6)
    >>> cluster.drain()
    >>> answers = cluster.results(tickets)
    """

    def __init__(
        self,
        n_replicas: Optional[int] = None,
        *,
        config: Optional[ClusterConfig] = None,
        policy: Optional[BatchPolicy] = None,
        router: Optional[Union[Router, str]] = None,
        dispatcher_factory: Optional[Callable[[], CostModelDispatcher]] = None,
        capacity_bytes: Optional[int] = None,
        max_pending: Optional[int] = None,
        start_time: Optional[float] = None,
        dedup: Optional[bool] = None,
        answer_cache_bytes: Optional[int] = None,
        observer: Optional[TraceRecorder] = None,
        fault_injector: Optional[FaultInjector] = None,
        hedge_delay_s: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> None:
        # Single normalization path: legacy kwargs build the same
        # ClusterConfig a config= caller passes, and everything below reads
        # from the config.  A custom Router *instance* is the one knob a
        # config cannot carry (it is not serializable); the instance is
        # used directly and the config records its policy name.
        router_obj: Optional[Router] = None
        if config is not None:
            conflicts = [
                name for name, given in (
                    ("n_replicas", n_replicas is not None),
                    ("policy", policy is not None),
                    ("router", router is not None),
                    ("capacity_bytes", capacity_bytes is not None),
                    ("max_pending", max_pending is not None),
                    ("start_time", start_time is not None),
                    ("dedup", dedup is not None),
                    ("answer_cache_bytes", answer_cache_bytes is not None),
                    ("hedge_delay_s", hedge_delay_s is not None),
                    ("max_retries", max_retries is not None),
                ) if given
            ]
            if conflicts:
                raise ServiceError(
                    f"pass configuration via config= or the legacy kwargs, "
                    f"not both (conflicting: {', '.join(conflicts)})"
                )
            router_obj = make_router(config.router)
        else:
            if n_replicas is None:
                raise ServiceError(
                    "pass n_replicas (or a full ClusterConfig via config=)"
                )
            if isinstance(router, str):
                router_obj = make_router(router)
            elif router is not None:
                router_obj = router
            else:
                router_obj = LeastOutstandingRouter()
            base = policy or BatchPolicy()
            config = ClusterConfig(
                n_replicas=int(n_replicas),
                max_batch_size=base.max_batch_size,
                max_wait_s=base.max_wait_s,
                router=router_obj.name,
                capacity_bytes=capacity_bytes,
                max_pending=max_pending,
                start_time=0.0 if start_time is None else float(start_time),
                dedup=bool(dedup) if dedup is not None else False,
                answer_cache_bytes=answer_cache_bytes,
                hedge_delay_s=hedge_delay_s,
                max_retries=3 if max_retries is None else int(max_retries),
            )
        self.config = config
        n_workers = int(config.n_replicas)
        self.router: Router = router_obj
        self.ring = HashRing(range(n_workers))
        self.clock = SimulatedClock(config.start_time)
        self._max_pending = config.max_pending
        if dispatcher_factory is not None:
            factory = dispatcher_factory
        elif config.backends is not None or config.calibration_path is not None:
            # Load a measured profile once and share it across every
            # replica's dispatcher (they price identically by construction).
            profile = (
                load_calibration_profile(config.calibration_path)
                if config.calibration_path is not None
                else None
            )
            backend_keys = config.backends

            def factory() -> CostModelDispatcher:
                return dispatcher_for(backend_keys, profile=profile)
        else:
            factory = CostModelDispatcher
        index_budget = (None if config.capacity_bytes is None
                        else int(config.capacity_bytes))
        if config.answer_cache_bytes is None:
            cache_slice = None
        else:
            cache_bytes = int(config.answer_cache_bytes)
            if cache_bytes < n_workers * MIN_CACHE_BYTES:
                raise ServiceError(
                    f"answer_cache_bytes={cache_bytes} is too small "
                    f"to give each of {n_workers} replicas the "
                    f"{MIN_CACHE_BYTES}-byte cache minimum"
                )
            if index_budget is not None:
                # The answer caches are carved out of the cluster-wide byte
                # budget; the index registries split what remains.
                index_budget -= cache_bytes
                if index_budget <= 0:
                    raise ServiceError(
                        f"answer_cache_bytes={cache_bytes} consumes "
                        f"the whole capacity_bytes={config.capacity_bytes} "
                        f"budget; nothing is left for the index caches"
                    )
            cache_slice = cache_bytes // n_workers
        if index_budget is None:
            slice_bytes = None
        else:
            slice_bytes = max(1, index_budget // n_workers)
        # The per-worker config (cluster budgets already carved into
        # per-replica slices); add_replica() mints from it, and
        # apply_tuning() keeps it current so late joiners arrive tuned.
        self._worker_config = config.service_config(
            capacity_bytes=slice_bytes, answer_cache_bytes=cache_slice
        )
        self._replicas: Tuple[LCAQueryService, ...] = tuple(
            LCAQueryService(
                config=self._worker_config,
                dispatcher=factory(),
                clock=SimulatedClock(config.start_time),
            )
            for _ in range(n_workers)
        )
        self._placement: Dict[str, Tuple[int, ...]] = {}
        self._sizes: Dict[str, Optional[int]] = {}
        self._shed = 0
        self._next_ticket = 0
        # Cluster tickets are consecutive integers indexing two columnar
        # maps: which replica served the query, and the worker-local ticket
        # there.  Result resolution is then a grouped fancy-indexing gather.
        self._ticket_replica = np.empty(_MIN_TICKET_TABLE, dtype=np.int64)
        self._ticket_local = np.empty(_MIN_TICKET_TABLE, dtype=np.int64)
        # Fault tolerance + elasticity.  The worker construction parameters
        # are kept so add_replica() can mint identically-budgeted workers;
        # per-replica byte slices are fixed at construction and are not
        # re-split when the cluster grows or shrinks.
        self.fault_injector = fault_injector
        self._hedge_delay_s = (None if config.hedge_delay_s is None
                               else float(config.hedge_delay_s))
        self._max_retries = int(config.max_retries)
        self._dispatcher_factory = factory
        self._alive: List[bool] = [True] * n_workers
        self._retired: List[bool] = [False] * n_workers
        # Replica-second accounting: birth instant per replica id, and the
        # retirement instant once retired (None while provisioned).
        self._born_at: List[float] = [config.start_time] * n_workers
        self._retired_at: List[Optional[float]] = [None] * n_workers
        self._all_alive = True
        self._transient: List[int] = [0] * n_workers
        self._failed: List[Tuple[int, str, FlushedBatch, np.ndarray]] = []
        self._parked: List[
            Tuple[str, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._retry_counts: Optional[np.ndarray] = None
        self._resubmitted = 0
        self._retried = 0
        self._hedges_issued = 0
        self._hedges_won = 0
        self._faults_applied = 0
        self._membership_events = 0
        self._tree_sources: Dict[str, Union[np.ndarray, _SharedLoader]] = {}
        self._tree_replicas: Dict[str, Optional[int]] = {}
        self._registered: Dict[str, Set[int]] = {}
        for i, worker in enumerate(self._replicas):
            self._install_hooks(i, worker)
        self._observer: Optional[TraceRecorder] = None
        if observer is not None:
            self.attach_observer(observer)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observer(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, if any."""
        return self._observer

    def attach_observer(self, observer: Optional[TraceRecorder]) -> None:
        """Attach one trace recorder to the whole cluster (``None`` detaches).

        Every replica worker emits into the shared recorder with its replica
        index stamped on each event (so batch ids stay globally unique and
        traces merge without relabeling); shed decisions — which belong to
        the cluster front door, not to any worker — are recorded with
        ``replica=-1``.
        """
        self._observer = observer
        for i, replica in enumerate(self._replicas):
            replica.attach_observer(observer, replica=i)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        """Number of replica workers.

        >>> ClusterService(4).n_replicas
        4
        """
        return len(self._replicas)

    @property
    def n_active(self) -> int:
        """Replicas not yet retired (alive or temporarily killed).

        >>> ClusterService(4).n_active
        4
        """
        return sum(1 for retired in self._retired if not retired)

    @property
    def n_live(self) -> int:
        """Replicas currently able to serve (active and not killed).

        >>> ClusterService(4).n_live
        4
        """
        return sum(1 for alive in self._alive if alive)

    @property
    def replicas(self) -> Tuple[LCAQueryService, ...]:
        """The replica workers, in replica-id order (read-only tuple).

        >>> workers = ClusterService(2).replicas
        >>> len(workers)
        2
        """
        return self._replicas

    @property
    def datasets(self) -> List[str]:
        """Names of all registered datasets.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> cluster.datasets
        ['t']
        """
        return list(self._placement)

    @property
    def tickets_issued(self) -> int:
        """How many cluster tickets have been issued (tickets are ``0..n-1``).

        Mirrors :attr:`LCAQueryService.tickets_issued`: cluster tickets are
        consecutive integers, so recording this before a submission
        identifies the tickets a partially admitted block received even
        when the submission raised :class:`~repro.errors.Overloaded`.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> _ = cluster.submit_many("t", [1, 2], [2, 1])
        >>> cluster.tickets_issued
        2
        """
        return self._next_ticket

    def placement(self, dataset: str) -> Tuple[int, ...]:
        """Replica ids holding ``dataset``, in placement order.

        >>> import numpy as np
        >>> cluster = ClusterService(4)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]), on=[1, 3])
        >>> cluster.placement("t")
        (1, 3)
        """
        return self._copies(dataset)

    def register_tree(
        self,
        name: str,
        parents: Optional[np.ndarray] = None,
        *,
        loader: Optional[Callable[[], np.ndarray]] = None,
        validate: bool = False,
        replicas: int = 1,
        on: Optional[Sequence[int]] = None,
    ) -> Tuple[int, ...]:
        """Register a tree on ``replicas`` workers; returns the placement.

        Placement defaults to the consistent-hash ring (stable under future
        replica-count changes); ``on`` pins the copies to explicit replica
        ids instead.  ``replicas=0`` means *every active replica, tracked*:
        the copy count follows membership, so a replica added later (e.g.
        by reactive autoscaling) starts serving the dataset, and a retired
        one stops.  A lazy ``loader`` is wrapped so it runs once no matter
        how many copies exist — every copy shares the loaded array.

        >>> import numpy as np
        >>> cluster = ClusterService(4)
        >>> cluster.register_tree("pinned", np.array([-1, 0]), on=[0, 2])
        (0, 2)
        >>> ringed = cluster.register_tree("ringed", np.array([-1, 0]),
        ...                                replicas=2)
        >>> len(ringed)
        2
        """
        if name in self._placement:
            raise ServiceError(f"dataset {name!r} is already registered")
        if (parents is None) == (loader is None):
            raise ServiceError("pass exactly one of parents= or loader=")
        if on is not None:
            copies = tuple(dict.fromkeys(int(i) for i in on))
            if not copies:
                raise ServiceError("on= must name at least one replica")
            bad = [i for i in copies if not 0 <= i < self.n_replicas]
            if bad:
                raise ServiceError(
                    f"replica ids {bad} out of range for a "
                    f"{self.n_replicas}-replica cluster"
                )
            gone = [i for i in copies if self._retired[i]]
            if gone:
                raise ServiceError(f"replica ids {gone} are retired")
        else:
            if not 0 <= int(replicas) <= self.n_active:
                raise ServiceError(
                    f"replicas must be in [0, {self.n_active}], got {replicas}"
                )
            want = int(replicas) or self.n_active
            copies = tuple(self.ring.place(name, want))
        source: Union[np.ndarray, _SharedLoader]
        if parents is not None:
            parents = np.asarray(parents, dtype=np.int64)
            if validate:
                validate_parents(parents)
            for c in copies:
                self._replicas[c].register_tree(name, parents)
            self._sizes[name] = int(parents.size)
            source = parents
        else:
            shared = _SharedLoader(loader, validate)  # type: ignore[arg-type]
            for c in copies:
                self._replicas[c].register_tree(name, loader=shared)
            self._sizes[name] = None
            source = shared
        self._placement[name] = copies
        self._tree_sources[name] = source
        self._tree_replicas[name] = None if on is not None else int(replicas)
        self._registered[name] = set(copies)
        return copies

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def add_replica(self) -> int:
        """Scale out: add one replica worker live; returns its replica id.

        The newcomer joins the consistent-hash ring at the cluster's
        current simulated time, ring-placed datasets are re-placed (only
        keys landing on the new arcs move, and displaced copies stay
        registered as warm spares), and any queries parked with no live
        copy are re-dispatched to it.  Index artifacts are *not* shipped:
        the new owner's :class:`~repro.service.registry.IndexRegistry`
        rebuilds them lazily on first use, exactly like a cold start.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]), replicas=2)
        >>> cluster.add_replica()
        2
        >>> cluster.n_replicas, cluster.n_live
        (3, 3)
        """
        rid = len(self._replicas)
        worker = LCAQueryService(
            config=self._worker_config,
            dispatcher=self._dispatcher_factory(),
            clock=SimulatedClock(self.clock.now),
        )
        self._replicas = self._replicas + (worker,)
        self._alive.append(True)
        self._retired.append(False)
        self._born_at.append(self.clock.now)
        self._retired_at.append(None)
        self._transient.append(0)
        if self._observer is not None:
            worker.attach_observer(self._observer, replica=rid)
        self._install_hooks(rid, worker)
        self.ring.add(rid)
        self._replace_ring_datasets()
        self._refresh_all_alive()
        self._membership_events += 1
        self.config = self.config.derive(n_replicas=self.n_active)
        if self._observer is not None:
            self._observer.record(
                EV_MEMBERSHIP,
                self.clock.now,
                replica=rid,
                detail=float(self.n_live),
                aux=self._observer.intern("add"),
            )
        self._drain_parked(self.clock.now)
        self._drain_failed()
        return rid

    def retire_replica(self, replica: int) -> None:
        """Scale in: drain a replica, remove it from routing, retire it.

        Drain-before-retire: an alive replica first serves everything it
        still queues (at the cluster frontier), so retirement never loses
        an admitted query; a killed replica's queue was already evicted and
        failed over at kill time.  The replica then leaves the hash ring,
        ring-placed datasets are re-placed onto the survivors, and pinned
        placements drop the retiree.  Replica ids are never reused, so old
        tickets stay resolvable against the retired worker's results.

        >>> import numpy as np
        >>> cluster = ClusterService(3)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]), replicas=2)
        >>> cluster.retire_replica(cluster.placement("t")[0])
        >>> cluster.n_active
        2
        """
        r = int(replica)
        if not 0 <= r < len(self._replicas):
            raise ServiceError(f"unknown replica {replica}")
        if self._retired[r]:
            raise ServiceError(f"replica {r} is already retired")
        if self.n_active == 1:
            raise ServiceError("cannot retire the last active replica")
        for name, copies in self._placement.items():
            if self._tree_replicas[name] is None and copies == (r,):
                raise ServiceError(
                    f"cannot retire replica {r}: it holds the only copy of "
                    f"pinned dataset {name!r}"
                )
        worker = self._replicas[r]
        if self._alive[r]:
            worker.sync_to(self.clock.now)
            worker.drain()
            self._drain_failed()
        self.ring.remove(r)
        self._retired[r] = True
        self._alive[r] = False
        self._retired_at[r] = self.clock.now
        for name, copies in list(self._placement.items()):
            if self._tree_replicas[name] is None and r in copies:
                self._placement[name] = tuple(c for c in copies if c != r)
        self._replace_ring_datasets()
        self._refresh_all_alive()
        self._membership_events += 1
        self.config = self.config.derive(n_replicas=self.n_active)
        if self._observer is not None:
            self._observer.record(
                EV_MEMBERSHIP,
                self.clock.now,
                replica=r,
                detail=float(self.n_live),
                aux=self._observer.intern("retire"),
            )

    def scale_to(self, n: int) -> Tuple[int, ...]:
        """Grow or shrink the active replica set to ``n`` workers.

        Growth is repeated :meth:`add_replica` with *warm bring-up*: every
        index artifact the newcomer's placement assigns it is prebuilt
        before the call returns, so traffic routed to a freshly scaled-out
        replica never queues behind a cold index build (a reactive
        scale-out that served its first batches cold would blow the very
        tail it fired to protect).  Shrinkage retires one safe
        victim at a time, re-evaluating safety after each retirement.  The
        victim is chosen warm-spare-aware among the replicas whose removal
        keeps every dataset it holds on at least one other *live* copy
        (survivors keep displaced-copy registrations, so a re-placement
        back is free) and never the sole copy of a pinned dataset: killed
        replicas retire first (they serve nothing), then the replica with
        the least outstanding queued work, newest id breaking ties.  When
        no victim is safe the call raises
        :class:`~repro.errors.ServiceError` and leaves membership where it
        got to.  Returns the affected replica ids, in order.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]), replicas=0)
        >>> cluster.scale_to(4)
        (2, 3)
        >>> cluster.scale_to(1)
        (3, 2, 1)
        >>> cluster.n_active, cluster.config.n_replicas
        (1, 1)
        """
        n = int(n)
        if n < 1:
            raise ServiceError("cannot scale below one replica")
        if n != self.n_active and self._observer is not None:
            self._observer.record(
                EV_SCALE,
                self.clock.now,
                replica=-1,
                detail=float(n),
                aux=self._observer.intern(
                    "out" if n > self.n_active else "in"
                ),
            )
        changed: List[int] = []
        while self.n_active < n:
            rid = self.add_replica()
            changed.append(rid)
            worker = self._replicas[rid]
            for name in worker.datasets:
                for backend in worker.dispatcher.backends:
                    worker.registry.fetch(
                        name,
                        "lca",
                        backend.spec,
                        sequential=backend.sequential,
                    )
        while self.n_active > n:
            victim = self._scale_in_victim()
            if victim is None:
                raise ServiceError(
                    f"cannot scale in below {self.n_active} replicas: no "
                    f"replica can be retired without dropping the last "
                    f"live copy of a dataset"
                )
            self.retire_replica(victim)
            changed.append(victim)
        return tuple(changed)

    def _scale_in_victim(self) -> Optional[int]:
        """The safest replica to retire next, or ``None`` if none is safe.

        A candidate must not hold the sole copy of a pinned dataset, and
        retiring it must leave every dataset it serves with at least one
        other live copy (counted over survivors only — a candidate's own
        liveness does not make it safer to keep).
        """
        if self.n_active <= 1:
            return None
        candidates: List[int] = []
        for r in range(len(self._replicas)):
            if self._retired[r]:
                continue
            safe = True
            for name, copies in self._placement.items():
                if r not in copies:
                    continue
                if self._tree_replicas[name] is None and copies == (r,):
                    safe = False  # sole pinned copy: retire would refuse
                    break
                if not any(
                    self._alive[c] for c in copies if c != r
                ):
                    safe = False  # would drop the last live copy
                    break
            if safe:
                candidates.append(r)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (
                self._alive[r],           # dead replicas retire first
                self._replicas[r].pending_count() if self._alive[r] else 0,
                -r,                       # newest id breaks ties
            ),
        )

    def replica_seconds(self, upto_s: Optional[float] = None) -> float:
        """Provisioned replica-seconds accrued so far (simulated clock).

        Each replica accrues from its birth (construction or
        :meth:`add_replica`) until its retirement, or until ``upto_s``
        (default: the cluster's current simulated time) while still
        provisioned.  Killed replicas accrue — they are paid for even
        while down.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> cluster.advance_to(1.0)
        >>> cluster.replica_seconds()
        2.0
        """
        now = self.clock.now if upto_s is None else float(upto_s)
        total = 0.0
        for r in range(len(self._replicas)):
            end = self._retired_at[r]
            total += max(0.0, (now if end is None else end) - self._born_at[r])
        return total

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str,
        x: int,
        y: int,
        *,
        at: Optional[float] = None,
    ) -> int:
        """Submit one LCA query through the router; returns a cluster ticket.

        Mirrors :meth:`LCAQueryService.submit` (validation first, then time,
        then admission): a bad query is rejected at its own call, a
        submission past ``max_pending`` raises
        :class:`~repro.errors.Overloaded`, and the arrival pre-advances
        every worker to ``t`` so routing and admission observe
        ``t``-fresh queue depths.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> ticket = cluster.submit("t", 2, 3)
        >>> cluster.drain(); cluster.result(ticket)
        0
        """
        copies = self._copies(dataset)
        n = self._dataset_size(dataset)
        if not (0 <= int(x) < n and 0 <= int(y) < n):
            raise InvalidQueryError(
                f"query nodes ({x}, {y}) out of range for dataset {dataset!r} "
                f"with {n} nodes"
            )
        t = self.clock.now if at is None else float(at)
        if t < self.clock.now:
            raise ServiceError(
                f"cannot move the clock backwards (now={self.clock.now}, "
                f"requested={t})"
            )
        if self.fault_injector is not None:
            self._apply_faults(t)
            copies = self._copies(dataset)
        for replica in self._replicas:
            replica.advance_to(t, joining=dataset)
        # The arrival moved observable time even if the query ends up shed:
        # advancing the cluster frontier with the workers keeps the clocks
        # in sync, so a drain() or a later legally-timestamped submission
        # after an Overloaded rejection still works.
        self.clock.advance_to(t)
        if not self._all_alive:
            live = self._live(copies)
            if not live:
                raise ReplicaDown(
                    f"all {len(copies)} copies of dataset {dataset!r} are "
                    f"down",
                    dataset=dataset,
                    queries=1,
                )
            copies = live
        if self._max_pending is not None:
            pending = self.pending_count()
            if pending + 1 > self._max_pending:
                self._shed += 1
                if self._observer is not None:
                    self._observer.record(EV_SHED, t, replica=-1, detail=1.0)
                raise Overloaded(
                    f"cluster queue is full (pending={pending}, "
                    f"max_pending={self._max_pending}); 1 query shed",
                    pending=pending,
                    capacity=self._max_pending,
                    admitted=0,
                    shed=1,
                )
        target = self.router.route_one(dataset, copies, self._outstanding(copies))
        local = self._replicas[target].submit(dataset, int(x), int(y), at=t)
        ticket = self._next_ticket
        self._next_ticket += 1
        self._ensure_ticket_capacity(self._next_ticket)
        self._ticket_replica[ticket] = target
        self._ticket_local[ticket] = local
        self._drain_failed()
        return ticket

    def submit_many(
        self,
        dataset: str,
        xs: np.ndarray,
        ys: np.ndarray,
        *,
        at: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Submit a column block through the router; returns cluster tickets.

        The columnar fast path end to end: one fused bounds check, one
        vectorized routing decision, and a stable argsort + ``searchsorted``
        cut into per-replica sub-blocks (each an arrival-ordered subsequence
        admitted through the worker's own vectorized ``submit_many``).

        Error semantics mirror :meth:`LCAQueryService.submit_many`: the
        clean prefix is admitted, then the first offending position raises.
        Admission control additionally caps the prefix at the cluster
        queue's free space — measured at the block's first arrival — and
        raises :class:`~repro.errors.Overloaded` for the remainder; chunked
        submission lets admission observe mid-stream flushes.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> tickets = cluster.submit_many("t", [1, 2], [3, 3],
        ...                               at=np.array([0.0, 1e-6]))
        >>> cluster.drain()
        >>> cluster.results(tickets).tolist()   # LCA(1,3)=1, LCA(2,3)=0
        [1, 0]
        """
        copies = self._copies(dataset)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.int64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.int64))
        if xs.shape != ys.shape:
            raise ServiceError("query arrays must have the same shape")
        if at is not None:
            at = np.atleast_1d(np.asarray(at, dtype=np.float64))
            if at.shape != xs.shape:
                raise ServiceError("timestamp array must match the query arrays")
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        n = self._dataset_size(dataset)
        if at is None:
            arrivals = np.full(xs.size, self.clock.now, dtype=np.float64)
        else:
            arrivals = at

        # Same first-offender semantics as the single-node block path — the
        # shared helper keeps the two validators in lockstep.
        stop, error = block_clean_prefix(
            xs, ys, arrivals, n=n, dataset=dataset, now=self.clock.now
        )

        if stop:
            if self.fault_injector is not None:
                self._apply_faults(float(arrivals[0]))
                copies = self._copies(dataset)
            for replica in self._replicas:
                replica.advance_to(float(arrivals[0]), joining=dataset)
            # Keep the cluster frontier in sync with the workers even if the
            # whole block is subsequently shed by admission control.
            self.clock.advance_to(float(arrivals[0]))
            if not self._all_alive:
                live = self._live(copies)
                if not live:
                    raise ReplicaDown(
                        f"all {len(copies)} copies of dataset {dataset!r} "
                        f"are down",
                        dataset=dataset,
                        queries=int(stop),
                    )
                copies = live
        if self._max_pending is not None and stop:
            pending = self.pending_count()
            free = self._max_pending - pending
            if stop > free:
                admitted = max(0, free)
                shed = stop - admitted
                self._shed += shed
                if self._observer is not None:
                    self._observer.record(EV_SHED, float(arrivals[0]),
                                          replica=-1, detail=float(shed))
                stop = admitted
                error = Overloaded(
                    f"cluster queue is full (pending={pending}, "
                    f"max_pending={self._max_pending}); admitted {admitted} "
                    f"of {xs.size} queries, shed {shed}",
                    pending=pending,
                    capacity=self._max_pending,
                    admitted=admitted,
                    shed=shed,
                )

        tickets = np.arange(self._next_ticket, self._next_ticket + stop, dtype=np.int64)
        if stop:
            self._next_ticket += stop
            self._ensure_ticket_capacity(self._next_ticket)
            assignment = self.router.route_block(
                dataset, copies, self._outstanding(copies), stop
            )
            order = np.argsort(assignment, kind="stable")
            grouped = assignment[order]
            targets = np.unique(grouped)
            starts = np.searchsorted(grouped, targets, side="left")
            ends = np.searchsorted(grouped, targets, side="right")
            for target, b0, b1 in zip(targets, starts, ends):
                sel = order[b0:b1]
                local = self._replicas[int(target)].submit_many(
                    dataset, xs[sel], ys[sel], at=arrivals[sel]
                )
                self._ticket_replica[tickets[sel]] = int(target)
                self._ticket_local[tickets[sel]] = local
            self.clock.advance_to(float(arrivals[stop - 1]))
            self._drain_failed()
        if error is not None:
            raise error
        return tickets

    def warm(self, dataset: str) -> None:
        """Prebuild the LCA index on every copy, for every backend.

        A production cluster warms caches before taking traffic; benchmarks
        call this so steady-state throughput is not diluted by each copy's
        one-time index build (which would otherwise dominate short streams).

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> cluster.warm("t")
        >>> cluster.stats().cache_misses > 0   # indexes were prebuilt
        True
        """
        for c in self._copies(dataset):
            worker = self._replicas[c]
            for backend in worker.dispatcher.backends:
                worker.registry.fetch(
                    dataset, "lca", backend.spec, sequential=backend.sequential
                )

    def advance_to(self, t: float) -> None:
        """Advance the whole cluster, serving every wait-expired batch.

        >>> import numpy as np
        >>> from repro.service import BatchPolicy
        >>> cluster = ClusterService(2, policy=BatchPolicy(max_batch_size=8,
        ...                                                max_wait_s=1e-3))
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> ticket = cluster.submit("t", 1, 2, at=0.0)
        >>> cluster.advance_to(2e-3)    # past the 1 ms wait deadline
        >>> cluster.result(ticket)
        0
        """
        self._apply_faults(float(t))
        t = self.clock.advance_to(float(t))
        for replica in self._replicas:
            replica.advance_to(t)
        self._drain_failed()

    def drain(self) -> None:
        """Flush and serve everything still queued, on every replica.

        Replica clocks are first aligned to the cluster frontier (serving
        any wait deadlines that expired strictly before it), so drain-time
        flushes happen at one well-defined cluster instant regardless of
        which worker each query was routed to.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> _ = cluster.submit_many("t", [1, 2], [2, 1])
        >>> cluster.drain()
        >>> cluster.pending_count()
        0
        """
        self._apply_faults(self.clock.now)
        while True:
            for replica in self._replicas:
                replica.sync_to(self.clock.now)
            for replica in self._replicas:
                replica.drain()
            self._drain_failed()
            if self.pending_count() == 0:
                break
        if self._parked:
            stranded = sum(int(t.size) for _, t, _, _, _ in self._parked)
            datasets = sorted({entry[0] for entry in self._parked})
            raise ReplicaDown(
                f"{stranded} admitted queries are stranded with no live copy "
                f"of {datasets}; recover a replica or add_replica(), then "
                f"drain() again",
                dataset=datasets[0],
                queries=stranded,
            )

    def pending_count(self, dataset: Optional[str] = None) -> int:
        """Queries currently queued (for one dataset, or cluster-wide).

        >>> import numpy as np
        >>> from repro.service import BatchPolicy
        >>> cluster = ClusterService(2, policy=BatchPolicy(max_batch_size=8,
        ...                                                max_wait_s=1.0))
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> _ = cluster.submit("t", 1, 2)
        >>> cluster.pending_count("t"), cluster.pending_count()
        (1, 1)
        """
        if dataset is not None:
            return sum(
                self._replicas[c].pending_count(dataset)
                for c in self._copies(dataset)
            )
        return sum(replica.pending_count() for replica in self._replicas)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, ticket: int) -> int:
        """The answer for one cluster ticket (its batch must have served).

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> ticket = cluster.submit("t", 1, 2)
        >>> cluster.drain()
        >>> cluster.result(ticket)
        0
        """
        t = int(ticket)
        if not 0 <= t < self._next_ticket:
            raise ServiceError(f"unknown ticket {ticket}")
        replica = self._replicas[int(self._ticket_replica[t])]
        local = int(self._ticket_local[t])
        if not replica.answered(local)[0]:
            raise ServiceError(
                f"ticket {ticket} is still queued; advance time or drain()"
            )
        return replica.result(local)

    def results(self, tickets: ArrayLike) -> np.ndarray:
        """Vector of answers for a sequence of cluster tickets.

        Raises :class:`ServiceError` for the first unknown or still-queued
        ticket in the sequence, exactly as :meth:`result` would.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0, 1]))
        >>> tickets = cluster.submit_many("t", [3, 2], [1, 3])
        >>> cluster.drain()
        >>> cluster.results(tickets).tolist()
        [1, 0]
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        self._check_answered(idx)
        out = np.empty(idx.size, dtype=np.int64)
        for replica_id, sel in self._by_replica(idx):
            worker = self._replicas[replica_id]
            out[sel] = worker.results(self._ticket_local[idx[sel]])
        return out

    def latency(self, ticket: int) -> float:
        """Modeled end-to-end latency of one answered query.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> ticket = cluster.submit("t", 1, 2)
        >>> cluster.drain()
        >>> cluster.latency(ticket) > 0.0
        True
        """
        self.result(ticket)  # raises uniformly for unknown/queued tickets
        t = int(ticket)
        replica = self._replicas[int(self._ticket_replica[t])]
        return replica.latency(int(self._ticket_local[t]))

    def latencies(self, tickets: ArrayLike) -> np.ndarray:
        """Vector of modeled latencies for a sequence of answered tickets.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> tickets = cluster.submit_many("t", [1, 2], [2, 1])
        >>> cluster.drain()
        >>> bool((cluster.latencies(tickets) > 0.0).all())
        True
        """
        idx = np.atleast_1d(np.asarray(tickets)).astype(np.int64, copy=False)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        self._check_answered(idx)
        out = np.empty(idx.size, dtype=np.float64)
        for replica_id, sel in self._by_replica(idx):
            worker = self._replicas[replica_id]
            out[sel] = worker.latencies(self._ticket_local[idx[sel]])
        return out

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> ClusterStats:
        """Aggregate the replicas' statistics into one cluster snapshot.

        >>> import numpy as np
        >>> cluster = ClusterService(2)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> _ = cluster.submit_many("t", [1, 2], [2, 1])
        >>> cluster.drain()
        >>> stats = cluster.stats()
        >>> stats.queries_answered, stats.queries_shed
        (2, 0)
        """
        per = tuple(replica.stats() for replica in self._replicas)
        collectors = [replica.stats_collector for replica in self._replicas]
        views = [c.latency_values for c in collectors if c.latency_values.size]
        if views:
            merged = views[0] if len(views) == 1 else np.concatenate(views)
            p50, p99 = (float(v) for v in np.percentile(merged, [50.0, 99.0]))
            mean, worst = float(merged.mean()), float(merged.max())
        else:
            p50 = p99 = mean = worst = 0.0
        firsts = [
            c.first_arrival_s for c in collectors if c.first_arrival_s is not None
        ]
        lasts = [
            c.last_completion_s for c in collectors if c.last_completion_s is not None
        ]
        span = (max(lasts) - min(firsts)) if firsts and lasts else 0.0
        answered = tuple(s.queries_answered for s in per)
        mean_load = sum(answered) / len(answered)
        imbalance = max(answered) / mean_load if mean_load > 0 else 0.0
        # A retried query was admitted into a worker more than once; count
        # it once at the cluster front door.
        submitted = sum(s.queries_submitted for s in per) - self._resubmitted
        offered = submitted + self._shed
        hits = sum(s.cache_hits for s in per)
        misses = sum(s.cache_misses for s in per)
        lookups = hits + misses
        answer_hits = sum(s.answer_cache_hits for s in per)
        answer_misses = sum(s.answer_cache_misses for s in per)
        kernel_queries = sum(s.kernel_queries for s in per)
        return ClusterStats(
            n_replicas=self.n_replicas,
            router_policy=self.router.name,
            queries_offered=offered,
            queries_submitted=submitted,
            queries_shed=self._shed,
            queries_answered=sum(answered),
            shed_rate=self._shed / offered if offered else 0.0,
            batches_flushed=sum(s.batches_flushed for s in per),
            latency_mean_s=mean,
            latency_p50_s=p50,
            latency_p99_s=p99,
            latency_max_s=worst,
            span_s=span,
            busy_time_s=sum(s.busy_time_s for s in per),
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            answer_cache_hits=answer_hits,
            answer_cache_misses=answer_misses,
            answer_cache_hit_rate=hit_rate(answer_hits, answer_misses),
            dedup_factor=dedup_factor(sum(answered), kernel_queries),
            per_replica_answered=answered,
            load_imbalance=imbalance,
            replicas=per,
            queries_retried=self._retried,
            hedges_issued=self._hedges_issued,
            hedges_won=self._hedges_won,
            faults_injected=self._faults_applied,
            membership_events=self._membership_events,
            replica_seconds=self.replica_seconds(),
        )

    # ------------------------------------------------------------------
    # Online tuning
    # ------------------------------------------------------------------
    def apply_tuning(self, *, max_batch_size: Optional[int] = None,
                     max_wait_s: Optional[float] = None,
                     hedge_delay_s: Optional[float] = None,
                     max_pending: Optional[int] = None,
                     n_replicas: Optional[int] = None,
                     dataset: Optional[str] = None) -> ClusterConfig:
        """Hot-swap the safe-to-retune knobs cluster-wide at a flush boundary.

        The cluster's :attr:`ClusterConfig.TUNABLE` subset: the batching
        knobs are forwarded to every worker's
        :meth:`LCAQueryService.apply_tuning` (batches the swap forces out
        are served immediately; in-flight batches are untouched), the
        hedge delay takes effect for every *subsequent* straggling batch
        (hooks are installed on demand when hedging turns on mid-run), and
        the admission limit re-prices the very next submission.  ``None``
        leaves a knob unchanged — tuning can therefore tighten or loosen
        hedging and admission but never disable them (that is a structural
        choice made at construction).  Newly minted replicas
        (:meth:`add_replica`) arrive with the tuned configuration.

        ``n_replicas`` makes the replica count itself a tunable knob: the
        cluster scales to the requested active count through
        :meth:`scale_to` (drain-before-retire, live-copy safety; an unsafe
        scale-in raises :class:`~repro.errors.ServiceError` and leaves the
        other knobs applied).

        ``dataset`` scopes the swap to one dataset's lane on its placement
        copies (a priority lane) and accepts only the batching knobs;
        cluster-wide knobs with ``dataset=`` raise
        :class:`~repro.errors.ServiceError`.

        Returns :attr:`config` after the call.

        >>> import numpy as np
        >>> cluster = ClusterService(2, max_pending=64)
        >>> _ = cluster.register_tree("t", np.array([-1, 0, 0]))
        >>> cluster.apply_tuning(max_batch_size=32,
        ...                      max_pending=128).max_pending
        128
        >>> cluster.replicas[0].policy.max_batch_size
        32
        """
        changes: Dict[str, object] = {}
        batch_changes: Dict[str, object] = {}
        if max_batch_size is not None:
            changes["max_batch_size"] = int(max_batch_size)
            batch_changes["max_batch_size"] = int(max_batch_size)
        if max_wait_s is not None:
            changes["max_wait_s"] = float(max_wait_s)
            batch_changes["max_wait_s"] = float(max_wait_s)
        if hedge_delay_s is not None:
            changes["hedge_delay_s"] = float(hedge_delay_s)
        if max_pending is not None:
            changes["max_pending"] = int(max_pending)
        if dataset is not None and (
            len(batch_changes) != len(changes) or n_replicas is not None
        ):
            raise ServiceError(
                "dataset-scoped tuning accepts only max_batch_size and "
                "max_wait_s; hedge_delay_s, max_pending and n_replicas "
                "are cluster-wide"
            )
        if not changes and n_replicas is None:
            return self.config
        if dataset is not None:
            for c in self._copies(dataset):
                self._replicas[c].apply_tuning(dataset=dataset,
                                               **batch_changes)  # type: ignore[arg-type]
            self._drain_failed()
            return self.config
        if changes:
            self.config = self.config.derive(**changes)
        if hedge_delay_s is not None:
            newly_hedged = self._hedge_delay_s is None
            self._hedge_delay_s = float(hedge_delay_s)
            if newly_hedged:
                for i, worker in enumerate(self._replicas):
                    worker.set_hedge_hook(self._make_hedge_hook(i))
        if max_pending is not None:
            self._max_pending = int(max_pending)
        if batch_changes:
            self._worker_config = self._worker_config.derive(**batch_changes)
            for worker in self._replicas:
                worker.apply_tuning(**batch_changes)  # type: ignore[arg-type]
            # A forced flush can be claimed by a serve interceptor (dead or
            # failing replica): re-dispatch exactly as any serve path does.
            self._drain_failed()
        if n_replicas is not None and int(n_replicas) != self.n_active:
            # Membership moves last so an unsafe scale-in leaves the other
            # knobs applied; scale_to() keeps config.n_replicas current.
            self.scale_to(int(n_replicas))
        return self.config

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _copies(self, dataset: str) -> Tuple[int, ...]:
        try:
            return self._placement[dataset]
        except KeyError:
            raise ServiceError(
                f"unknown dataset {dataset!r}; register_tree() it first"
            ) from None

    def _dataset_size(self, dataset: str) -> int:
        size = self._sizes[dataset]
        if size is None:
            # Materializes the shared lazy loader through the first copy's
            # store; the other copies reuse the same array on first touch.
            first = self._placement[dataset][0]
            size = int(self._replicas[first].store.tree(dataset).size)
            self._sizes[dataset] = size
        return size

    def _outstanding(self, copies: Tuple[int, ...]) -> np.ndarray:
        return np.array(
            [self._replicas[c].pending_count() for c in copies], dtype=np.int64
        )

    def _ensure_ticket_capacity(self, needed: int) -> None:
        if needed <= self._ticket_replica.size:
            return
        used = self._ticket_replica.size
        self._ticket_replica = grow_table(self._ticket_replica, used, needed)
        self._ticket_local = grow_table(self._ticket_local, used, needed)
        if self._retry_counts is not None:
            counts = np.zeros(self._ticket_replica.size, dtype=np.int64)
            counts[:used] = self._retry_counts
            self._retry_counts = counts

    def _by_replica(self, idx: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
        """Group positions of ``idx`` by owning replica (ascending id)."""
        owners = self._ticket_replica[idx]
        order = np.argsort(owners, kind="stable")
        grouped = owners[order]
        uniq, starts = np.unique(grouped, return_index=True)
        bounds = np.append(starts, grouped.size)
        for i, replica_id in enumerate(uniq):
            yield int(replica_id), order[bounds[i]:bounds[i + 1]]

    def _check_answered(self, idx: np.ndarray) -> None:
        unknown = (idx < 0) | (idx >= self._next_ticket)
        if unknown.any():
            raise ServiceError(f"unknown ticket {idx[int(unknown.argmax())]}")
        queued = np.zeros(idx.size, dtype=bool)
        for replica_id, sel in self._by_replica(idx):
            worker = self._replicas[replica_id]
            queued[sel] = ~worker.answered(self._ticket_local[idx[sel]])
        if queued.any():
            raise ServiceError(
                f"ticket {idx[int(queued.argmax())]} is still queued; "
                f"advance time or drain()"
            )

    # ------------------------------------------------------------------
    # Fault tolerance internals
    # ------------------------------------------------------------------
    def _install_hooks(self, replica: int, worker: LCAQueryService) -> None:
        """Wire the worker's fault hooks; inert unless features are on."""
        if self.fault_injector is not None:
            worker.set_serve_interceptor(self._make_interceptor(replica))
        if self._hedge_delay_s is not None:
            worker.set_hedge_hook(self._make_hedge_hook(replica))

    def _make_interceptor(
        self, replica: int
    ) -> Callable[[str, FlushedBatch], bool]:
        def intercept(dataset: str, batch: FlushedBatch) -> bool:
            if self._alive[replica]:
                if self._transient[replica] <= 0:
                    return False
                self._transient[replica] -= 1
            debt = self._replicas[replica].debt_of(batch.tickets)
            self._failed.append((replica, dataset, batch, debt))
            return True

        return intercept

    def _make_hedge_hook(
        self, replica: int
    ) -> Callable[[str, FlushedBatch, float], Optional[float]]:
        def hedge(
            dataset: str, batch: FlushedBatch, completion_s: float
        ) -> Optional[float]:
            return self._hedge(replica, dataset, batch, completion_s)

        return hedge

    def _hedge(
        self,
        source: int,
        dataset: str,
        batch: FlushedBatch,
        completion_s: float,
    ) -> Optional[float]:
        """Duplicate a straggling batch onto another live copy; first wins."""
        delay = self._hedge_delay_s
        if delay is None or completion_s - batch.flush_s <= delay:
            return None
        copies = tuple(
            c for c in self._copies(dataset) if c != source and self._alive[c]
        )
        if not copies:
            return None
        target = self.router.route_one(dataset, copies, self._outstanding(copies))
        issue_s = batch.flush_s + delay
        alt = self._replicas[target].serve_hedge(
            dataset, batch.xs, batch.ys, issue_s=issue_s
        )
        self._hedges_issued += 1
        won = alt < completion_s
        if won:
            self._hedges_won += 1
        if self._observer is not None:
            self._observer.record(
                EV_HEDGE,
                issue_s,
                batch=batch.batch_id,
                replica=target,
                detail=alt - issue_s,
                aux=self._observer.intern("won" if won else "lost"),
            )
        return alt if won else None

    def _live(self, copies: Tuple[int, ...]) -> Tuple[int, ...]:
        if self._all_alive:
            return copies
        return tuple(c for c in copies if self._alive[c])

    def _refresh_all_alive(self) -> None:
        self._all_alive = all(
            self._alive[i] or self._retired[i]
            for i in range(len(self._replicas))
        )

    def _apply_faults(self, upto_s: float) -> None:
        """Apply every scheduled fault event due at or before ``upto_s``."""
        injector = self.fault_injector
        if injector is None:
            return
        next_due = injector.next_time_s
        if next_due is None or next_due > upto_s:
            return
        for event in injector.advance(upto_s):
            t = max(event.time_s, self.clock.now)
            # Serve everything due before the fault instant first: a fault
            # takes effect at its own simulated time, never retroactively.
            for i, worker in enumerate(self._replicas):
                if self._alive[i]:
                    worker.advance_to(t)
            self.clock.advance_to(t)
            self._apply_event(event, t)
            self._faults_applied += 1
        self._drain_failed()

    def _apply_event(self, event: FaultEvent, t: float) -> None:
        action = event.action
        if action == "add":
            self.add_replica()
            return
        if action == "retire":
            self.retire_replica(self._fault_target(event))
            return
        r = self._fault_target(event)
        if action == "kill":
            self._kill(r, t)
        elif action == "recover":
            self._recover(r, t)
        elif action == "slowdown":
            self._replicas[r].set_service_factor(event.factor)
        elif action == "transient":
            self._transient[r] += event.count
        if self._observer is not None:
            detail = event.factor if action == "slowdown" else float(event.count)
            self._observer.record(
                EV_FAULT,
                t,
                replica=r,
                detail=detail,
                aux=self._observer.intern(action),
            )

    def _fault_target(self, event: FaultEvent) -> int:
        r = event.replica
        if not 0 <= r < len(self._replicas) or self._retired[r]:
            raise ServiceError(
                f"fault event {event.action!r} targets unknown or retired "
                f"replica {r}"
            )
        return r

    def _kill(self, r: int, t: float) -> None:
        if not self._alive[r]:
            return
        self._alive[r] = False
        self._all_alive = False
        worker = self._replicas[r]
        for dataset, columns in worker.evict_pending().items():
            local, xs, ys, arrival_s = columns
            tickets = self._cluster_tickets(r, local)
            origin_s = arrival_s - worker.debt_of(local)
            self._redispatch(dataset, tickets, xs, ys, origin_s, t, exclude=r)

    def _recover(self, r: int, t: float) -> None:
        if self._alive[r]:
            return
        self._replicas[r].advance_to(t)
        self._alive[r] = True
        self._refresh_all_alive()
        self._drain_parked(t)

    def _cluster_tickets(self, replica: int, local: np.ndarray) -> np.ndarray:
        """Cluster tickets currently mapped to ``(replica, local)`` pairs.

        Returned in ascending *local*-ticket order, which is the worker's
        admission order — the row order of the evicted columns and of a
        :class:`FlushedBatch`.
        """
        n = self._next_ticket
        candidates = np.flatnonzero(self._ticket_replica[:n] == replica)
        hits = candidates[np.isin(self._ticket_local[candidates], local)]
        order = np.argsort(self._ticket_local[hits], kind="stable")
        return hits[order]

    def _redispatch(
        self,
        dataset: str,
        tickets: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        origin_s: np.ndarray,
        now: float,
        *,
        exclude: Optional[int] = None,
    ) -> None:
        """Failover: re-admit queries onto surviving copies of ``dataset``.

        ``origin_s`` is each query's *original* cluster arrival (prior debt
        already subtracted), so re-admission charges the full elapsed time
        since then as latency debt — reported latency survives any number
        of failovers.  ``exclude`` steers the retry away from the replica
        that just failed it: a hard exclusion when that replica is dead
        (the liveness filter removes it anyway), a soft preference when it
        is alive but flaky — if it holds the only live copy, retrying there
        beats parking live work.  With no live copy the queries are parked
        (a recovery or scale-out re-dispatches them); past ``max_retries``
        the typed :class:`~repro.errors.ReplicaDown` is raised instead.
        """
        count = int(tickets.size)
        if count == 0:
            return
        live = tuple(c for c in self._copies(dataset) if self._alive[c])
        copies = tuple(c for c in live if c != exclude) or live
        if not copies:
            self._parked.append((dataset, tickets, xs, ys, origin_s))
            return
        if self._retry_counts is None:
            self._retry_counts = np.zeros(
                self._ticket_replica.size, dtype=np.int64
            )
        attempts = self._retry_counts[tickets] + 1
        if int(attempts.max()) > self._max_retries:
            raise ReplicaDown(
                f"{count} queries on dataset {dataset!r} exceeded the retry "
                f"cap ({self._max_retries})",
                dataset=dataset,
                queries=count,
            )
        self._retry_counts[tickets] = attempts
        assignment = self.router.route_block(
            dataset, copies, self._outstanding(copies), count
        )
        order = np.argsort(assignment, kind="stable")
        grouped = assignment[order]
        targets = np.unique(grouped)
        starts = np.searchsorted(grouped, targets, side="left")
        ends = np.searchsorted(grouped, targets, side="right")
        for target, b0, b1 in zip(targets, starts, ends):
            sel = order[b0:b1]
            worker = self._replicas[int(target)]
            t_re = max(now, worker.clock.now)
            rearrival = np.full(sel.size, t_re, dtype=np.float64)
            local = worker.submit_many(
                dataset,
                xs[sel],
                ys[sel],
                at=rearrival,
                latency_debt=rearrival - origin_s[sel],
            )
            self._ticket_replica[tickets[sel]] = int(target)
            self._ticket_local[tickets[sel]] = local
            self._resubmitted += int(sel.size)
            self._retried += int(sel.size)
            if self._observer is not None:
                self._observer.record(
                    EV_RETRY,
                    t_re,
                    replica=int(target),
                    detail=float(sel.size),
                    aux=self._observer.intern(dataset),
                )

    def _drain_failed(self) -> None:
        """Re-dispatch every batch captured by a serve interceptor."""
        while self._failed:
            source, dataset, batch, debt = self._failed.pop(0)
            tickets = self._cluster_tickets(source, batch.tickets)
            self._redispatch(
                dataset,
                tickets,
                batch.xs,
                batch.ys,
                batch.arrival_s - debt,
                self.clock.now,
                exclude=source,
            )

    def _drain_parked(self, t: float) -> None:
        """Re-dispatch queries parked while no copy of their dataset lived."""
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for dataset, tickets, xs, ys, origin_s in parked:
            self._redispatch(dataset, tickets, xs, ys, origin_s, t)

    def _register_copy(self, name: str, replica: int) -> None:
        source = self._tree_sources[name]
        if isinstance(source, _SharedLoader):
            self._replicas[replica].register_tree(name, loader=source)
        else:
            self._replicas[replica].register_tree(name, source)

    def _replace_ring_datasets(self) -> None:
        """Recompute ring placements after membership changed.

        Newly-placed copies are registered on their owners (indexes rebuild
        lazily on first use); copies displaced off a placement keep their
        registration as warm spares, so a later re-placement back is free.
        """
        for name, want in self._tree_replicas.items():
            if want is None:
                continue  # pinned via on=; membership changes never move it
            ring_size = len(self.ring.replica_ids)
            # want == 0 tracks membership: the dataset lives on every
            # replica currently in the ring.
            count = ring_size if want == 0 else min(want, ring_size)
            copies = tuple(self.ring.place(name, count))
            registered = self._registered[name]
            for c in copies:
                if c not in registered:
                    self._register_copy(name, c)
                    registered.add(c)
            self._placement[name] = copies

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ClusterService(replicas={self.n_replicas}, "
            f"router={self.router.name!r}, datasets={self.datasets}, "
            f"pending={self.pending_count()}, shed={self._shed})"
        )
