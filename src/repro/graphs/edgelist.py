"""Undirected edge-list graph representation.

The Euler tour construction in the paper deliberately starts from "a very
unstructured input: an unordered collection of undirected edges, represented
as pairs of node identifiers" (§2.1).  :class:`EdgeList` is exactly that —
two parallel integer arrays plus the node count — with the small amount of
validation and normalization the algorithms rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import InvalidGraphError


@dataclass
class EdgeList:
    """An undirected multigraph as parallel source/target arrays.

    Attributes
    ----------
    u, v:
        ``int64`` arrays of equal length ``m``; edge ``i`` joins ``u[i]`` and
        ``v[i]``.  The graph is undirected: ``(u, v)`` and ``(v, u)`` denote
        the same edge.
    n:
        Number of nodes; all identifiers must lie in ``[0, n)``.
    """

    u: np.ndarray
    v: np.ndarray
    n: int

    def __post_init__(self) -> None:
        self.u = np.asarray(self.u, dtype=np.int64)
        self.v = np.asarray(self.v, dtype=np.int64)
        if self.u.ndim != 1 or self.v.ndim != 1 or self.u.shape != self.v.shape:
            raise InvalidGraphError("u and v must be 1-D arrays of equal length")
        if self.n < 0:
            raise InvalidGraphError("node count must be non-negative")
        if self.u.size:
            lo = min(int(self.u.min()), int(self.v.min()))
            hi = max(int(self.u.max()), int(self.v.max()))
            if lo < 0 or hi >= self.n:
                raise InvalidGraphError(
                    f"edge endpoints must lie in [0, {self.n}); found range [{lo}, {hi}]"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (counting multiplicity)."""
        return int(self.u.size)

    def __len__(self) -> int:
        return self.num_edges

    def copy(self) -> "EdgeList":
        """Deep copy of the edge list."""
        return EdgeList(self.u.copy(), self.v.copy(), self.n)

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate over edges as Python ``(u, v)`` tuples (for tests/IO)."""
        return zip(self.u.tolist(), self.v.tolist())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]], n: Optional[int] = None
                   ) -> "EdgeList":
        """Build an edge list from an iterable of ``(u, v)`` pairs.

        When ``n`` is omitted it is inferred as ``max id + 1`` (0 for an empty
        graph).
        """
        arr = np.asarray(list(pairs), dtype=np.int64)
        if arr.size == 0:
            u = np.empty(0, dtype=np.int64)
            v = np.empty(0, dtype=np.int64)
        else:
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise InvalidGraphError("pairs must be an iterable of (u, v) tuples")
            u, v = arr[:, 0].copy(), arr[:, 1].copy()
        if n is None:
            n = int(max(u.max(initial=-1), v.max(initial=-1)) + 1) if u.size else 0
        return cls(u, v, n)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def has_self_loops(self) -> bool:
        """True when any edge joins a node to itself."""
        return bool(np.any(self.u == self.v))

    def without_self_loops(self) -> "EdgeList":
        """Copy of the edge list with self-loops removed."""
        keep = self.u != self.v
        return EdgeList(self.u[keep], self.v[keep], self.n)

    def canonical_undirected(self) -> "EdgeList":
        """Copy with every edge stored as ``(min(u,v), max(u,v))``."""
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        return EdgeList(lo, hi, self.n)

    def deduplicated(self) -> "EdgeList":
        """Copy with self-loops removed and parallel edges collapsed."""
        simple = self.without_self_loops().canonical_undirected()
        if simple.num_edges == 0:
            return simple
        key = simple.u * np.int64(simple.n) + simple.v
        _, first = np.unique(key, return_index=True)
        first.sort()
        return EdgeList(simple.u[first], simple.v[first], simple.n)

    def degrees(self) -> np.ndarray:
        """Degree of every node (self-loops count twice, as usual)."""
        deg = np.bincount(self.u, minlength=self.n)
        deg += np.bincount(self.v, minlength=self.n)
        return deg.astype(np.int64)

    # ------------------------------------------------------------------
    # Derived representations
    # ------------------------------------------------------------------
    def directed_halfedges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the ``2m`` directed half-edges ``(src, dst, undirected_id)``.

        For undirected edge ``i = (x, y)``, half-edges ``2i = (x, y)`` and
        ``2i + 1 = (y, x)`` are adjacent in the output — the layout the DCEL
        construction (paper §2.1, array ``A``) requires, where an edge's twin
        is its neighbour in ``A``.
        """
        m = self.num_edges
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int64)
        src[0::2] = self.u
        dst[0::2] = self.v
        src[1::2] = self.v
        dst[1::2] = self.u
        eid = np.repeat(np.arange(m, dtype=np.int64), 2)
        return src, dst, eid

    def relabeled(self, permutation: np.ndarray) -> "EdgeList":
        """Apply a node relabeling: node ``i`` becomes ``permutation[i]``."""
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self.n,):
            raise InvalidGraphError("permutation must have length n")
        if np.unique(permutation).size != self.n:
            raise InvalidGraphError("permutation must be a bijection on [0, n)")
        return EdgeList(permutation[self.u], permutation[self.v], self.n)

    def subgraph(self, node_mask: np.ndarray) -> Tuple["EdgeList", np.ndarray]:
        """Induced subgraph on the nodes where ``node_mask`` is true.

        Returns the new edge list (nodes renumbered densely, preserving order)
        and the array of old node ids for each new id.
        """
        node_mask = np.asarray(node_mask, dtype=bool)
        if node_mask.shape != (self.n,):
            raise InvalidGraphError("node_mask must have length n")
        old_ids = np.flatnonzero(node_mask)
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[old_ids] = np.arange(old_ids.size)
        keep = node_mask[self.u] & node_mask[self.v]
        sub = EdgeList(new_id[self.u[keep]], new_id[self.v[keep]], int(old_ids.size))
        return sub, old_ids
