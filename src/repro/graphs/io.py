"""Simple edge-list IO: whitespace text files and compressed NumPy archives.

Real deployments of the paper's code read DIMACS/SNAP-style edge lists from
disk.  The harness here generates its datasets synthetically, but round-trip
IO is still provided so users can persist generated instances or load their
own graphs into the same pipeline.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from ..errors import InvalidGraphError
from .edgelist import EdgeList

PathLike = Union[str, os.PathLike]


def save_edgelist_text(edges: EdgeList, path: PathLike, *, header: bool = True) -> None:
    """Write an edge list as whitespace-separated ``u v`` lines.

    A leading comment line ``# nodes=<n> edges=<m>`` records the node count so
    isolated trailing nodes survive a round trip.
    """
    with open(path, "w", encoding="ascii") as fh:
        if header:
            fh.write(f"# nodes={edges.num_nodes} edges={edges.num_edges}\n")
        for a, b in zip(edges.u.tolist(), edges.v.tolist()):
            fh.write(f"{a} {b}\n")


def load_edgelist_text(path: PathLike, *, num_nodes: Optional[int] = None) -> EdgeList:
    """Read an edge list written by :func:`save_edgelist_text` (or SNAP-style).

    Lines starting with ``#`` or ``%`` are treated as comments; a
    ``# nodes=<n>`` comment (ours) fixes the node count, otherwise it is
    inferred from the maximum id unless ``num_nodes`` is given.
    """
    us = []
    vs = []
    n_from_header: Optional[int] = None
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line[0] in "#%":
                if "nodes=" in line:
                    try:
                        n_from_header = int(line.split("nodes=")[1].split()[0])
                    except (IndexError, ValueError):
                        pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise InvalidGraphError(f"malformed edge line: {line!r}")
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    if num_nodes is not None:
        n = num_nodes
    elif n_from_header is not None:
        n = n_from_header
    else:
        n = int(max(u.max(initial=-1), v.max(initial=-1)) + 1) if u.size else 0
    return EdgeList(u, v, n)


def save_edgelist_npz(edges: EdgeList, path: PathLike) -> None:
    """Persist an edge list as a compressed ``.npz`` archive."""
    np.savez_compressed(path, u=edges.u, v=edges.v, n=np.int64(edges.num_nodes))


def load_edgelist_npz(path: PathLike) -> EdgeList:
    """Load an edge list written by :func:`save_edgelist_npz`."""
    with np.load(path) as data:
        return EdgeList(data["u"], data["v"], int(data["n"]))


def save_parents_npz(parents: np.ndarray, path: PathLike) -> None:
    """Persist a tree parent array as a compressed ``.npz`` archive."""
    np.savez_compressed(path, parents=np.asarray(parents, dtype=np.int64))


def load_parents_npz(path: PathLike) -> np.ndarray:
    """Load a parent array written by :func:`save_parents_npz`."""
    with np.load(path) as data:
        return np.asarray(data["parents"], dtype=np.int64)
