"""Rooted-tree utilities based on parent arrays.

The paper's LCA experiments describe trees "as an array of parents — i.e.
node ``P[i]`` is the parent of node ``i`` for every ``i`` except the root"
(§3.2).  This module provides validation, conversions between parent arrays
and edge lists, sequential reference computations of depths/orders (used as
test oracles), and node-relabeling helpers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import InvalidGraphError, NotATreeError
from .edgelist import EdgeList

#: Sentinel parent value used for the root.
NO_PARENT = -1


def validate_parents(parents: np.ndarray) -> int:
    """Validate a parent array and return the root node.

    A valid parent array has exactly one entry equal to ``NO_PARENT`` (the
    root), every other entry in ``[0, n)``, and no cycles.
    """
    parents = np.asarray(parents, dtype=np.int64)
    if parents.ndim != 1:
        raise NotATreeError("parent array must be 1-D")
    n = parents.size
    if n == 0:
        raise NotATreeError("a tree must have at least one node")
    roots = np.flatnonzero(parents == NO_PARENT)
    if roots.size != 1:
        raise NotATreeError(f"expected exactly one root, found {roots.size}")
    root = int(roots[0])
    others = parents[parents != NO_PARENT]
    if others.size and (others.min() < 0 or others.max() >= n):
        raise NotATreeError("parent indices must lie in [0, n)")
    # Cycle check: every node must reach the root.  Computed with pointer
    # doubling so the check is O(n log n) rather than O(n^2).
    ptr = parents.copy()
    ptr[root] = root
    for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
        ptr = ptr[ptr]
    if not np.all(ptr == root):
        raise NotATreeError("parent array contains a cycle or unreachable nodes")
    return root


def tree_root(parents: np.ndarray) -> int:
    """Return the root of a parent array without the full validation pass."""
    parents = np.asarray(parents, dtype=np.int64)
    roots = np.flatnonzero(parents == NO_PARENT)
    if roots.size != 1:
        raise NotATreeError(f"expected exactly one root, found {roots.size}")
    return int(roots[0])


def parents_to_edgelist(parents: np.ndarray) -> EdgeList:
    """Convert a parent array into an undirected edge list (child, parent)."""
    parents = np.asarray(parents, dtype=np.int64)
    root = tree_root(parents)
    children = np.flatnonzero(parents != NO_PARENT)
    del root
    return EdgeList(children, parents[children], parents.size)


def edgelist_to_parents(edges: EdgeList, root: int = 0) -> np.ndarray:
    """Orient an undirected tree edge list away from ``root``.

    Sequential BFS reference implementation used in tests and generators; the
    parallel pipeline does the same job with the Euler tour.
    """
    n = edges.num_nodes
    if not (0 <= root < n):
        raise InvalidGraphError("root out of range")
    if edges.num_edges != n - 1:
        raise NotATreeError(f"a tree on {n} nodes needs {n - 1} edges, got {edges.num_edges}")
    adj_head = np.full(n, -1, dtype=np.int64)
    adj_next = np.full(2 * edges.num_edges, -1, dtype=np.int64)
    adj_to = np.empty(2 * edges.num_edges, dtype=np.int64)
    for slot, (a, b) in enumerate(zip(edges.u.tolist(), edges.v.tolist())):
        for k, (x, y) in enumerate(((a, b), (b, a))):
            s = 2 * slot + k
            adj_to[s] = y
            adj_next[s] = adj_head[x]
            adj_head[x] = s
    parents = np.full(n, NO_PARENT, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    stack = [root]
    while stack:
        x = stack.pop()
        s = adj_head[x]
        while s != -1:
            y = int(adj_to[s])
            if not visited[y]:
                visited[y] = True
                parents[y] = x
                stack.append(y)
            s = adj_next[s]
    if not visited.all():
        raise NotATreeError("edge list is not connected; cannot orient as a tree")
    return parents


def depths_from_parents(parents: np.ndarray) -> np.ndarray:
    """Depth (distance from the root) of every node; sequential reference.

    Runs in O(n) using memoized path walks; intended as a test oracle and for
    dataset characterization, not as a measured algorithm.
    """
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    root = tree_root(parents)
    depth = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    parents_list = parents.tolist()
    depth_list = depth.tolist()
    for start in range(n):
        if depth_list[start] >= 0:
            continue
        path = []
        node = start
        while depth_list[node] < 0:
            path.append(node)
            node = parents_list[node]
        base = depth_list[node]
        for offset, p in enumerate(reversed(path), start=1):
            depth_list[p] = base + offset
    return np.asarray(depth_list, dtype=np.int64)


def subtree_sizes_from_parents(parents: np.ndarray) -> np.ndarray:
    """Subtree size of every node; sequential reference (test oracle)."""
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    validate_parents(parents)
    order = np.argsort(depths_from_parents(parents), kind="stable")
    size = np.ones(n, dtype=np.int64)
    parents_list = parents.tolist()
    for node in order[::-1].tolist():
        p = parents_list[node]
        if p != NO_PARENT:
            size[p] += size[node]
    return size


def average_depth(parents: np.ndarray) -> float:
    """Average node depth of the tree (the paper's tree-difficulty metric)."""
    return float(depths_from_parents(parents).mean())


def tree_height(parents: np.ndarray) -> int:
    """Maximum node depth of the tree."""
    return int(depths_from_parents(parents).max())


def relabel_tree(parents: np.ndarray, permutation: np.ndarray,
                 ) -> np.ndarray:
    """Relabel nodes of a tree: node ``i`` becomes ``permutation[i]``.

    Returns the new parent array.  The paper applies a random permutation to
    every generated tree "so that the tree structure is maintained but the
    identifiers do not leak any information" (§3.2).
    """
    parents = np.asarray(parents, dtype=np.int64)
    permutation = np.asarray(permutation, dtype=np.int64)
    n = parents.size
    if permutation.shape != (n,):
        raise InvalidGraphError("permutation must have length n")
    if np.unique(permutation).size != n:
        raise InvalidGraphError("permutation must be a bijection on [0, n)")
    new_parents = np.full(n, NO_PARENT, dtype=np.int64)
    has_parent = parents != NO_PARENT
    new_parents[permutation[has_parent]] = permutation[parents[has_parent]]
    new_parents[permutation[~has_parent]] = NO_PARENT
    return new_parents


def random_relabel_tree(parents: np.ndarray, *, seed: int = 0
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a uniformly random node relabeling; returns (new_parents, permutation)."""
    parents = np.asarray(parents, dtype=np.int64)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(parents.size).astype(np.int64)
    return relabel_tree(parents, permutation), permutation


def brute_force_lca(parents: np.ndarray, x: int, y: int) -> int:
    """Reference LCA of two nodes by explicit ancestor-set intersection."""
    parents = np.asarray(parents, dtype=np.int64)
    n = parents.size
    if not (0 <= x < n and 0 <= y < n):
        raise InvalidGraphError("query nodes out of range")
    ancestors = set()
    node = x
    while node != NO_PARENT:
        ancestors.add(node)
        node = int(parents[node])
    node = y
    while node not in ancestors:
        node = int(parents[node])
        if node == NO_PARENT:  # pragma: no cover - impossible in a valid tree
            raise NotATreeError("query nodes are not in the same tree")
    return node


def query_bounds_mask(xs: np.ndarray, ys: np.ndarray, n: int) -> np.ndarray:
    """Elementwise out-of-range mask for query node pairs against ``[0, n)``.

    One fused check instead of four reduction passes: reinterpreting the
    int64 node ids as uint64 maps negative values to huge ones, so a single
    elementwise maximum compared against ``n`` catches both ends of the
    range.  (The same-itemsize ``.view`` is free but requires a contiguous
    last axis on NumPy < 1.23; strided inputs take the — equally wrapping —
    cast.)
    """
    def as_uint64(a: np.ndarray) -> np.ndarray:
        return a.view(np.uint64) if a.flags.c_contiguous else a.astype(np.uint64)

    return np.maximum(as_uint64(xs), as_uint64(ys)) >= np.uint64(n)


def generate_random_queries(n: int, q: int, *, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``q`` LCA queries uniformly at random from ``[0, n) × [0, n)``."""
    if n <= 0:
        raise InvalidGraphError("need at least one node to generate queries")
    if q < 0:
        raise ValueError("query count must be non-negative")
    rng = np.random.default_rng(seed)
    x = rng.integers(0, n, size=q, dtype=np.int64)
    y = rng.integers(0, n, size=q, dtype=np.int64)
    return x, y
