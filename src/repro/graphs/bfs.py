"""Breadth-first search: level-synchronous GPU-style and sequential CPU-style.

BFS plays two roles in the paper:

* it is the spanning-tree builder of the Chaitanya–Kothapalli bridge
  algorithm (§4.1), whose depth guarantee (≤ 2× minimum) bounds the marking
  work by ``O(m · d)``;
* it is the canonical example of a GPU graph primitive whose performance is
  "very sensitive to the diameter" (§4.3) — each BFS level is a separate
  kernel launch, so a road network with a 9000-hop diameter pays 9000 launch
  latencies regardless of how little work each level does.

The GPU-style implementation below is edge-frontier based and charges exactly
that cost profile; the sequential variant is the CPU reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from .csr import CSRGraph

_UNSET = -1


@dataclass
class BFSResult:
    """Result of a BFS traversal from a single source.

    Attributes
    ----------
    source:
        The start node.
    levels:
        Distance from the source for every node (-1 if unreachable).
    parents:
        BFS-tree parent of every node (-1 for the source and unreachable nodes).
    parent_edge_ids:
        Undirected edge id of the tree edge to the parent (-1 where no parent).
    num_levels:
        Number of BFS levels processed (i.e. eccentricity of the source + 1
        within its component).
    """

    source: int
    levels: np.ndarray
    parents: np.ndarray
    parent_edge_ids: np.ndarray
    num_levels: int

    @property
    def reached(self) -> np.ndarray:
        """Boolean mask of nodes reachable from the source."""
        return self.levels >= 0

    def tree_edge_mask(self, num_edges: int) -> np.ndarray:
        """Boolean mask over undirected edge ids marking BFS-tree edges."""
        mask = np.zeros(num_edges, dtype=bool)
        used = self.parent_edge_ids[self.parent_edge_ids >= 0]
        mask[used] = True
        return mask


def bfs_gpu(graph: CSRGraph, source: int,
            *, ctx: Optional[ExecutionContext] = None) -> BFSResult:
    """Level-synchronous, edge-frontier BFS (Merrill-Garland-style substitute).

    Every level performs: frontier expansion (gather all outgoing adjacency
    slots), filtering of already-visited targets, deduplication of the new
    frontier, and a scatter of levels/parents — each charged as bulk kernels.
    The per-level kernel-launch overhead is what makes this slow on
    large-diameter graphs.
    """
    ctx = ensure_context(ctx)
    n = graph.num_nodes
    if not (0 <= source < n):
        raise InvalidGraphError(f"source {source} out of range")
    levels = np.full(n, _UNSET, dtype=np.int64)
    parents = np.full(n, _UNSET, dtype=np.int64)
    parent_edge_ids = np.full(n, _UNSET, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        srcs, tgts, eids = graph.expand_frontier(frontier, ctx=ctx)
        if srcs.size == 0:
            break
        unvisited = levels[tgts] == _UNSET
        cand_t = tgts[unvisited]
        cand_s = srcs[unvisited]
        cand_e = eids[unvisited]
        ctx.kernel(
            "bfs_filter_visited",
            threads=max(int(srcs.size), 1),
            ops=2.0 * srcs.size,
            bytes_read=float(srcs.size) * 16.0,
            bytes_written=float(cand_t.size) * 24.0,
            launches=2,
            random_access=True,
        )
        if cand_t.size == 0:
            break
        # Deduplicate targets discovered multiple times this level (keep the
        # first discoverer; on a GPU this would be an atomic CAS race whose
        # winner is arbitrary — any winner is a valid BFS parent).
        uniq_t, first_idx = np.unique(cand_t, return_index=True)
        new_frontier = uniq_t
        levels[new_frontier] = level + 1
        parents[new_frontier] = cand_s[first_idx]
        parent_edge_ids[new_frontier] = cand_e[first_idx]
        ctx.kernel(
            "bfs_update_frontier",
            threads=max(int(cand_t.size), 1),
            ops=3.0 * cand_t.size,
            bytes_read=float(cand_t.size) * 24.0,
            bytes_written=float(new_frontier.size) * 24.0,
            launches=2,
            random_access=True,
        )
        frontier = new_frontier
        level += 1
        if level > n:  # pragma: no cover - defensive
            raise InvalidGraphError("BFS exceeded n levels; graph structure corrupt")
    return BFSResult(source, levels, parents, parent_edge_ids, level + 1)


def bfs_cpu(graph: CSRGraph, source: int,
            *, ctx: Optional[ExecutionContext] = None) -> BFSResult:
    """Sequential queue-based BFS; the CPU reference with O(n + m) cost."""
    ctx = ensure_context(ctx)
    n = graph.num_nodes
    if not (0 <= source < n):
        raise InvalidGraphError(f"source {source} out of range")
    levels = np.full(n, _UNSET, dtype=np.int64)
    parents = np.full(n, _UNSET, dtype=np.int64)
    parent_edge_ids = np.full(n, _UNSET, dtype=np.int64)
    levels[source] = 0
    indptr = graph.indptr
    indices = graph.indices
    edge_ids = graph.edge_ids
    queue = [source]
    head = 0
    max_level = 0
    levels_list = levels.tolist()
    parents_list = parents.tolist()
    pe_list = parent_edge_ids.tolist()
    indptr_l = indptr.tolist()
    indices_l = indices.tolist()
    eids_l = edge_ids.tolist()
    while head < len(queue):
        x = queue[head]
        head += 1
        lx = levels_list[x]
        for slot in range(indptr_l[x], indptr_l[x + 1]):
            y = indices_l[slot]
            if levels_list[y] == _UNSET:
                levels_list[y] = lx + 1
                parents_list[y] = x
                pe_list[y] = eids_l[slot]
                max_level = max(max_level, lx + 1)
                queue.append(y)
    visited = sum(1 for lv in levels_list if lv != _UNSET)
    touched_edges = int(indptr[-1]) if visited == n else int(
        sum(indptr_l[x + 1] - indptr_l[x] for x in queue)
    )
    ctx.sequential("bfs_cpu", ops=float(visited + touched_edges),
                   bytes_touched=float((visited + touched_edges) * 16), random_access=True)
    return BFSResult(
        source,
        np.asarray(levels_list, dtype=np.int64),
        np.asarray(parents_list, dtype=np.int64),
        np.asarray(pe_list, dtype=np.int64),
        max_level + 1,
    )


def bfs(graph: CSRGraph, source: int, *, device: str = "gpu",
        ctx: Optional[ExecutionContext] = None) -> BFSResult:
    """Dispatch helper: ``device`` is ``"gpu"`` or ``"cpu"``."""
    key = device.strip().lower()
    if key == "gpu":
        return bfs_gpu(graph, source, ctx=ctx)
    if key == "cpu":
        return bfs_cpu(graph, source, ctx=ctx)
    raise ValueError(f"unknown BFS device {device!r}")
