"""Kronecker (RMAT) graph generator.

The paper's bridge-finding experiments use the Graph500 ``kron_g500-logn16``
… ``logn21`` instances: stochastic Kronecker graphs with ``2^k`` nodes and an
edge factor of roughly 16–120, exhibiting skewed degrees and tiny diameters.
Since the published instances cannot be downloaded here, this module
regenerates graphs from the same distribution with the standard RMAT
recursive-quadrant sampling procedure (Leskovec et al.), which is how the
Graph500 instances themselves are produced.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ..edgelist import EdgeList

#: Graph500 reference RMAT parameters.
GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(scale: int, edge_factor: int = 16,
               probs=GRAPH500_PROBS, *, seed: int = 0,
               deduplicate: bool = True, permute: bool = True) -> EdgeList:
    """Generate an RMAT/Kronecker graph with ``2**scale`` nodes.

    Parameters
    ----------
    scale:
        log2 of the number of nodes.
    edge_factor:
        Number of undirected edges generated per node (before deduplication).
    probs:
        The ``(a, b, c, d)`` quadrant probabilities; must sum to 1.
    deduplicate:
        Collapse parallel edges and drop self-loops (the paper's instances are
        simple graphs).
    permute:
        Apply a random node permutation so node ids carry no structure.
    """
    if scale <= 0 or scale > 30:
        raise ConfigurationError("scale must be in (0, 30]")
    if edge_factor <= 0:
        raise ConfigurationError("edge_factor must be positive")
    a, b, c, d = probs
    if abs((a + b + c + d) - 1.0) > 1e-9 or min(a, b, c, d) < 0:
        raise ConfigurationError("RMAT probabilities must be non-negative and sum to 1")

    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    # Sample each address bit independently, the standard vectorised RMAT
    # formulation: with probability a+b the source bit is 0, and the target
    # bit is conditioned on the source bit.
    p_src0 = a + b
    p_tgt0_given_src0 = a / (a + b) if (a + b) > 0 else 0.0
    p_tgt0_given_src1 = c / (c + d) if (c + d) > 0 else 0.0
    for bit in range(scale):
        src_is1 = rng.random(m) >= p_src0
        p_tgt0 = np.where(src_is1, p_tgt0_given_src1, p_tgt0_given_src0)
        tgt_is1 = rng.random(m) >= p_tgt0
        u |= src_is1.astype(np.int64) << bit
        v |= tgt_is1.astype(np.int64) << bit

    edges = EdgeList(u, v, n)
    if deduplicate:
        edges = edges.deduplicated()
    if permute:
        perm = rng.permutation(n).astype(np.int64)
        edges = edges.relabeled(perm)
    return edges


def kron_g500(logn: int, *, edge_factor: int = 16, seed: int = 0) -> EdgeList:
    """Convenience wrapper mimicking the ``kron_g500-lognXX`` naming scheme."""
    return rmat_graph(logn, edge_factor=edge_factor, seed=seed)
