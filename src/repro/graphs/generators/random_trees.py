"""Synthetic tree generators used by the LCA experiments (paper §3.2).

Three families, exactly as described in the paper:

* **Uniform random attachment** (*shallow* trees): node 0 is the root and the
  parent of node ``i`` is uniform over ``{0, …, i-1}``; expected average depth
  is ``ln n``.
* **Grasp-γ trees** (*deep* trees): the parent of node ``i`` is uniform over
  ``{max(i-γ, 0), …, i-1}``.  ``γ = 1`` is deterministically a path,
  ``γ = ∞`` recovers the shallow distribution; otherwise the expected average
  depth is ``≈ n / (γ + 1)``.
* **Barabási–Albert trees** (*scale-free*): the parent of node ``i`` is chosen
  with probability proportional to current degree (preferential attachment),
  yielding power-law degrees and very shallow trees.

All generators can optionally apply the random node relabeling the paper uses
so identifiers do not leak structural information.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ...errors import ConfigurationError
from ..trees import NO_PARENT, random_relabel_tree

#: Symbolic "infinite grasp" value accepted by :func:`grasp_tree`.
INFINITE_GRASP = float("inf")


def _finalize(parents: np.ndarray, relabel: bool, seed: int) -> np.ndarray:
    if relabel:
        parents, _ = random_relabel_tree(parents, seed=seed + 0x5EED)
    return parents


def random_attachment_tree(n: int, *, seed: int = 0, relabel: bool = True) -> np.ndarray:
    """Uniform random attachment tree on ``n`` nodes (the paper's shallow trees).

    Returns a parent array with ``parents[root] == -1``.
    """
    if n <= 0:
        raise ConfigurationError("tree size must be positive")
    rng = np.random.default_rng(seed)
    parents = np.full(n, NO_PARENT, dtype=np.int64)
    if n > 1:
        i = np.arange(1, n, dtype=np.int64)
        parents[1:] = (rng.random(n - 1) * i).astype(np.int64)
    return _finalize(parents, relabel, seed)


def grasp_tree(n: int, grasp: float, *, seed: int = 0, relabel: bool = True) -> np.ndarray:
    """Grasp-γ tree on ``n`` nodes (the paper's depth-controlled trees).

    ``grasp`` may be ``float('inf')`` to recover the shallow distribution.
    """
    if n <= 0:
        raise ConfigurationError("tree size must be positive")
    if grasp != INFINITE_GRASP and (not float(grasp).is_integer() or grasp < 1):
        raise ConfigurationError("grasp must be a positive integer or infinity")
    if grasp == INFINITE_GRASP:
        return random_attachment_tree(n, seed=seed, relabel=relabel)
    g = int(grasp)
    rng = np.random.default_rng(seed)
    parents = np.full(n, NO_PARENT, dtype=np.int64)
    if n > 1:
        i = np.arange(1, n, dtype=np.int64)
        lo = np.maximum(i - g, 0)
        span = i - lo
        parents[1:] = lo + (rng.random(n - 1) * span).astype(np.int64)
    return _finalize(parents, relabel, seed)


def barabasi_albert_tree(n: int, *, seed: int = 0, relabel: bool = True) -> np.ndarray:
    """Barabási–Albert (preferential attachment) tree on ``n`` nodes.

    Uses the standard repeated-endpoint trick: maintaining a list with every
    edge endpoint recorded once makes sampling an element uniformly from the
    list equivalent to sampling a node proportionally to its degree.
    """
    if n <= 0:
        raise ConfigurationError("tree size must be positive")
    rng = np.random.default_rng(seed)
    parents = np.full(n, NO_PARENT, dtype=np.int64)
    if n > 1:
        # endpoint pool: each attachment appends the chosen parent and the new
        # child, so node degree == multiplicity in the pool (root starts with
        # one virtual entry).
        pool = np.empty(2 * n, dtype=np.int64)
        pool[0] = 0
        pool_size = 1
        # Draw all random numbers up front for speed; index into the pool as
        # it grows (pool_size is deterministic: 2i - 1 before inserting node i).
        draws = rng.random(n - 1)
        parents_list = parents.tolist()
        pool_list = pool.tolist()
        for i in range(1, n):
            j = int(draws[i - 1] * pool_size)
            p = pool_list[j]
            parents_list[i] = p
            pool_list[pool_size] = p
            pool_list[pool_size + 1] = i
            pool_size += 2
        parents = np.asarray(parents_list, dtype=np.int64)
    return _finalize(parents, relabel, seed)


def expected_average_depth(n: int, grasp: float) -> float:
    """Expected average node depth for a grasp-γ tree (paper §3.2 formula).

    ``ln n`` when ``grasp`` is infinite, else ``n / (γ + 1)`` up to an
    additive constant.
    """
    if n <= 0:
        raise ConfigurationError("tree size must be positive")
    if grasp == INFINITE_GRASP:
        return math.log(max(n, 2))
    return n / (float(grasp) + 1.0)


def grasp_for_target_depth(n: int, target_average_depth: float) -> float:
    """Grasp value whose expected average depth is ``target_average_depth``.

    Returns infinity when the target is at or below the shallow-tree depth
    ``ln n``; used by the Figure 5 depth sweep to pick γ values.
    """
    if n <= 0:
        raise ConfigurationError("tree size must be positive")
    if target_average_depth <= math.log(max(n, 2)):
        return INFINITE_GRASP
    gamma = n / target_average_depth - 1.0
    return max(1.0, round(gamma))


def make_tree(kind: str, n: int, *, grasp: Optional[float] = None, seed: int = 0,
              relabel: bool = True) -> np.ndarray:
    """Dispatch helper: build a tree of the named family.

    ``kind`` is one of ``"shallow"``, ``"deep"``/``"grasp"`` (requires
    ``grasp``), or ``"scale-free"``/``"ba"``.
    """
    key = kind.strip().lower()
    if key == "shallow":
        return random_attachment_tree(n, seed=seed, relabel=relabel)
    if key in ("deep", "grasp"):
        if grasp is None:
            raise ConfigurationError("grasp trees require the grasp parameter")
        return grasp_tree(n, grasp, seed=seed, relabel=relabel)
    if key in ("scale-free", "scalefree", "ba", "barabasi-albert"):
        return barabasi_albert_tree(n, seed=seed, relabel=relabel)
    raise ConfigurationError(f"unknown tree kind {kind!r}")
