"""Synthetic dataset generators (the paper's §3.2 trees and §4.2 graph stand-ins)."""

from .kronecker import GRAPH500_PROBS, kron_g500, rmat_graph
from .random_trees import (
    INFINITE_GRASP,
    barabasi_albert_tree,
    expected_average_depth,
    grasp_for_target_depth,
    grasp_tree,
    make_tree,
    random_attachment_tree,
)
from .road import (
    cycle_graph,
    grid_graph,
    path_graph,
    road_graph,
    road_graph_with_target_size,
)
from .social import (
    citation_graph,
    collaboration_graph,
    preferential_attachment_graph,
    social_graph,
    web_graph,
)

__all__ = [
    "random_attachment_tree",
    "grasp_tree",
    "barabasi_albert_tree",
    "make_tree",
    "expected_average_depth",
    "grasp_for_target_depth",
    "INFINITE_GRASP",
    "rmat_graph",
    "kron_g500",
    "GRAPH500_PROBS",
    "grid_graph",
    "road_graph",
    "road_graph_with_target_size",
    "path_graph",
    "cycle_graph",
    "preferential_attachment_graph",
    "web_graph",
    "citation_graph",
    "social_graph",
    "collaboration_graph",
]
