"""Road-network-like graph generators.

The paper's hardest bridge-finding instances are the DIMACS USA road graphs
and the Great-Britain OSM graph: extremely sparse (average degree ≈ 2.5),
with diameters in the thousands and millions of bridges.  Those properties —
not the exact geography — are what make BFS-based algorithms slow and the
Euler-tour-based TV algorithm shine, so the stand-ins here are perturbed 2-D
grid graphs:

* start from a ``rows × cols`` grid (diameter ``rows + cols``);
* delete a random fraction of the edges while keeping the graph connected
  (deleting edges creates degree-1/degree-2 filaments and bridges, just like
  rural roads);
* optionally subdivide a fraction of the remaining edges into chains, which
  further stretches the diameter and adds bridges.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...errors import ConfigurationError
from ..edgelist import EdgeList


def grid_graph(rows: int, cols: int) -> EdgeList:
    """Plain ``rows × cols`` grid graph (4-neighbour connectivity)."""
    if rows <= 0 or cols <= 0:
        raise ConfigurationError("grid dimensions must be positive")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_u = idx[:, :-1].ravel()
    horiz_v = idx[:, 1:].ravel()
    vert_u = idx[:-1, :].ravel()
    vert_v = idx[1:, :].ravel()
    u = np.concatenate([horiz_u, vert_u])
    v = np.concatenate([horiz_v, vert_v])
    return EdgeList(u, v, rows * cols)


def _spanning_tree_mask_grid(rows: int, cols: int, m: int) -> np.ndarray:
    """Boolean mask over the edges of :func:`grid_graph` forming a spanning tree.

    Uses the comb tree: the full first row plus every vertical edge — a
    spanning tree expressible without any graph search, so edge deletion can
    protect it cheaply.
    """
    mask = np.zeros(m, dtype=bool)
    n_horiz = rows * (cols - 1)
    # Horizontal edges of row 0 are the first (cols - 1) horizontal edges.
    mask[: cols - 1] = True
    # All vertical edges.
    mask[n_horiz:] = True
    return mask


def road_graph(rows: int, cols: int, *, removal_fraction: float = 0.45,
               subdivide_fraction: float = 0.0, deadend_fraction: float = 0.0,
               seed: int = 0, permute: bool = True) -> EdgeList:
    """Sparse, large-diameter, bridge-rich road-network stand-in.

    Parameters
    ----------
    rows, cols:
        Grid dimensions of the underlying lattice.
    removal_fraction:
        Fraction of non-spanning-tree edges to delete.  Higher values yield
        sparser graphs with more bridges and a larger diameter.
    subdivide_fraction:
        Fraction of surviving edges replaced by length-2 chains through a new
        degree-2 node; mimics long road segments and increases both the node
        count and the diameter.
    deadend_fraction:
        Fraction of lattice nodes that receive a pendant chain of 1–3 new
        nodes.  These "dead-end streets" are what makes real road networks
        bridge-rich (the DIMACS USA graphs have bridges at ~60% of the node
        count); every pendant edge is a bridge by construction.
    seed:
        Random seed.
    permute:
        Apply a random node permutation at the end.
    """
    if not (0.0 <= removal_fraction < 1.0):
        raise ConfigurationError("removal_fraction must be in [0, 1)")
    if not (0.0 <= subdivide_fraction <= 1.0):
        raise ConfigurationError("subdivide_fraction must be in [0, 1]")
    if not (0.0 <= deadend_fraction <= 1.0):
        raise ConfigurationError("deadend_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    base = grid_graph(rows, cols)
    m = base.num_edges
    protected = _spanning_tree_mask_grid(rows, cols, m)
    removable = np.flatnonzero(~protected)
    n_remove = int(round(removal_fraction * removable.size))
    remove = rng.choice(removable, size=n_remove, replace=False) if n_remove else np.empty(0, dtype=np.int64)
    keep = np.ones(m, dtype=bool)
    keep[remove] = False
    u, v = base.u[keep], base.v[keep]
    n = base.num_nodes

    if subdivide_fraction > 0 and u.size:
        n_sub = int(round(subdivide_fraction * u.size))
        sub_idx = rng.choice(u.size, size=n_sub, replace=False) if n_sub else np.empty(0, dtype=np.int64)
        sub_mask = np.zeros(u.size, dtype=bool)
        sub_mask[sub_idx] = True
        mid = np.arange(n, n + n_sub, dtype=np.int64)
        keep_u, keep_v = u[~sub_mask], v[~sub_mask]
        su, sv = u[sub_mask], v[sub_mask]
        u = np.concatenate([keep_u, su, mid])
        v = np.concatenate([keep_v, mid, sv])
        n += n_sub

    if deadend_fraction > 0:
        lattice_nodes = base.num_nodes
        anchors = np.flatnonzero(rng.random(lattice_nodes) < deadend_fraction)
        if anchors.size:
            lengths = rng.integers(1, 4, size=anchors.size)
            total_new = int(lengths.sum())
            new_ids = np.arange(n, n + total_new, dtype=np.int64)
            offsets = np.zeros(anchors.size, dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            chain = np.repeat(np.arange(anchors.size), lengths)
            pos_in_chain = np.arange(total_new) - offsets[chain]
            predecessor = np.where(pos_in_chain == 0, anchors[chain], new_ids - 1)
            u = np.concatenate([u, predecessor])
            v = np.concatenate([v, new_ids])
            n += total_new

    edges = EdgeList(u, v, n)
    if permute:
        perm = rng.permutation(n).astype(np.int64)
        edges = edges.relabeled(perm)
    return edges


def path_graph(n: int) -> EdgeList:
    """A simple path on ``n`` nodes — the extreme large-diameter instance."""
    if n <= 0:
        raise ConfigurationError("path length must be positive")
    idx = np.arange(n - 1, dtype=np.int64)
    return EdgeList(idx, idx + 1, n)


def cycle_graph(n: int) -> EdgeList:
    """A cycle on ``n`` nodes — large diameter, zero bridges."""
    if n < 3:
        raise ConfigurationError("a cycle needs at least three nodes")
    idx = np.arange(n, dtype=np.int64)
    return EdgeList(idx, (idx + 1) % n, n)


def road_graph_with_target_size(target_nodes: int, *, aspect: float = 1.0,
                                removal_fraction: float = 0.45,
                                subdivide_fraction: float = 0.0,
                                deadend_fraction: float = 0.0,
                                seed: int = 0) -> Tuple[EdgeList, Tuple[int, int]]:
    """Build a road graph with roughly ``target_nodes`` lattice nodes.

    Returns the graph and the ``(rows, cols)`` actually used.  Note that
    subdivisions and dead-end chains add nodes on top of the lattice, so the
    final node count exceeds ``target_nodes`` when those fractions are nonzero.
    """
    if target_nodes <= 3:
        raise ConfigurationError("target_nodes must exceed 3")
    rows = max(2, int(round((target_nodes * aspect) ** 0.5)))
    cols = max(2, int(round(target_nodes / rows)))
    return (
        road_graph(rows, cols, removal_fraction=removal_fraction,
                   subdivide_fraction=subdivide_fraction,
                   deadend_fraction=deadend_fraction, seed=seed),
        (rows, cols),
    )
