"""Social/web-network-like graph generators.

Stand-ins for the paper's second dataset category (web-wikipedia2009,
cit-Patents, socfb-A-anon, soc-LiveJournal1, ca-hollywood-2009): power-law
degree distributions, small diameters, moderate density, and a non-trivial
number of bridges contributed by low-degree periphery nodes.

The generator is a Barabási–Albert preferential-attachment multigraph with a
configurable number of links per new node, optionally mixed with a fraction of
degree-1 "pendant" nodes (these are what create bridges in real social graphs)
and random long-range edges.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ..edgelist import EdgeList


def preferential_attachment_graph(n: int, edges_per_node: int = 4, *, seed: int = 0,
                                  pendant_fraction: float = 0.2,
                                  permute: bool = True) -> EdgeList:
    """Barabási–Albert-style graph with optional pendant (degree-1) nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    edges_per_node:
        Links created by each arriving non-pendant node (BA parameter ``m``).
    pendant_fraction:
        Fraction of arriving nodes that attach with a single edge instead of
        ``edges_per_node`` — these leaves and the chains hanging off them are
        the main source of bridges in social-network graphs.
    seed:
        Random seed.
    permute:
        Apply a random node permutation at the end.
    """
    if n <= 2:
        raise ConfigurationError("n must exceed 2")
    if edges_per_node <= 0:
        raise ConfigurationError("edges_per_node must be positive")
    if not (0.0 <= pendant_fraction <= 1.0):
        raise ConfigurationError("pendant_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)

    is_pendant = rng.random(n) < pendant_fraction
    is_pendant[: edges_per_node + 1] = False  # seed clique nodes are regular
    links_per_node = np.where(is_pendant, 1, edges_per_node)

    # Degree-proportional sampling via the endpoint-pool trick (each inserted
    # edge appends both endpoints to the pool).
    max_pool = 2 * int(links_per_node.sum()) + 2 * n
    pool = np.empty(max_pool, dtype=np.int64)
    pool_size = 0
    us = []
    vs = []

    # Seed: a small clique on edges_per_node + 1 nodes so early targets exist.
    seed_nodes = edges_per_node + 1
    for a in range(seed_nodes):
        for b in range(a + 1, seed_nodes):
            us.append(a)
            vs.append(b)
            pool[pool_size] = a
            pool[pool_size + 1] = b
            pool_size += 2

    pool_list = pool.tolist()
    draws = rng.random(int(links_per_node[seed_nodes:].sum()) + 1)
    draw_idx = 0
    for i in range(seed_nodes, n):
        k = int(links_per_node[i])
        chosen = set()
        attempts = 0
        while len(chosen) < k and attempts < 8 * k:
            j = int(draws[draw_idx % draws.size] * pool_size)
            draw_idx += 1
            attempts += 1
            target = pool_list[j]
            if target != i:
                chosen.add(target)
        if not chosen:
            chosen.add(int(rng.integers(0, i)))
        for target in chosen:
            us.append(i)
            vs.append(target)
            pool_list[pool_size] = i
            pool_list[pool_size + 1] = target
            pool_size += 2

    edges = EdgeList(np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64), n)
    edges = edges.deduplicated()
    if permute:
        perm = rng.permutation(n).astype(np.int64)
        edges = edges.relabeled(perm)
    return edges


def web_graph(n: int, *, seed: int = 0) -> EdgeList:
    """Web-crawl-like stand-in: sparse power-law graph, many pendant chains.

    Models graphs like web-wikipedia2009, whose bridge count is a very large
    fraction of the node count (Table 1: 1.4M bridges out of 1.8M nodes).
    """
    return preferential_attachment_graph(
        n, edges_per_node=3, pendant_fraction=0.55, seed=seed
    )


def citation_graph(n: int, *, seed: int = 0) -> EdgeList:
    """Citation-network stand-in (cit-Patents-like): denser, fewer pendants."""
    return preferential_attachment_graph(
        n, edges_per_node=6, pendant_fraction=0.25, seed=seed
    )


def social_graph(n: int, *, seed: int = 0) -> EdgeList:
    """Online-social-network stand-in (socfb / LiveJournal-like)."""
    return preferential_attachment_graph(
        n, edges_per_node=10, pendant_fraction=0.3, seed=seed
    )


def collaboration_graph(n: int, *, seed: int = 0) -> EdgeList:
    """Dense collaboration-network stand-in (ca-hollywood-like): very high
    average degree, few bridges."""
    return preferential_attachment_graph(
        n, edges_per_node=24, pendant_fraction=0.02, seed=seed
    )
