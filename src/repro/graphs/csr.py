"""Compressed sparse row (CSR) adjacency representation.

CSR is the workhorse layout for GPU graph algorithms: a single ``indptr``
offset array plus a flat ``indices`` neighbour array allow frontier expansion
(BFS), neighbour gathering (CK marking) and per-node segmented reductions
(TV ``low``/``high``) to be expressed as bulk array operations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from .edgelist import EdgeList


class CSRGraph:
    """Undirected graph in CSR form.

    Each undirected edge appears twice (once per direction).  ``edge_ids``
    maps every directed slot back to the index of the originating undirected
    edge in the source :class:`~repro.graphs.edgelist.EdgeList`, which is what
    lets bridge finders report results per original edge.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbours of node ``u`` live in
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        Flat neighbour array of length ``2m``.
    edge_ids:
        Undirected-edge id for each slot of ``indices`` (length ``2m``).
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 edge_ids: np.ndarray, n: int, m: int) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.edge_ids = np.asarray(edge_ids, dtype=np.int64)
        self.n = int(n)
        self.m = int(m)
        if self.indptr.shape != (self.n + 1,):
            raise InvalidGraphError("indptr must have length n + 1")
        if self.indices.shape != self.edge_ids.shape:
            raise InvalidGraphError("indices and edge_ids must align")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise InvalidGraphError("indptr must start at 0 and end at len(indices)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edgelist(cls, edges: EdgeList,
                      *, ctx: Optional[ExecutionContext] = None) -> "CSRGraph":
        """Build CSR adjacency from an undirected edge list.

        Charged as the standard GPU pipeline: a histogram of degrees, an
        exclusive scan for ``indptr``, and a scatter of both directions of
        every edge.
        """
        ctx = ensure_context(ctx)
        n, m = edges.num_nodes, edges.num_edges
        src, dst, eid = edges.directed_halfedges()
        deg = np.bincount(src, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        indices = dst[order]
        edge_ids = eid[order]
        ctx.kernel(
            "csr_build",
            threads=max(2 * m, 1),
            ops=6.0 * max(2 * m, 1),
            bytes_read=float(src.nbytes + dst.nbytes + eid.nbytes),
            bytes_written=float(indices.nbytes + edge_ids.nbytes + indptr.nbytes),
            launches=4,
            random_access=True,
        )
        return cls(indptr, indices, edge_ids, n, m)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges."""
        return self.m

    @property
    def num_halfedges(self) -> int:
        """Number of directed adjacency slots (``2m``)."""
        return int(self.indices.size)

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour array of a single node (a view into ``indices``)."""
        if not (0 <= node < self.n):
            raise InvalidGraphError(f"node {node} out of range")
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_edge_ids(self, node: int) -> np.ndarray:
        """Undirected edge ids incident to a single node."""
        if not (0 <= node < self.n):
            raise InvalidGraphError(f"node {node} out of range")
        return self.edge_ids[self.indptr[node]:self.indptr[node + 1]]

    def halfedge_sources(self) -> np.ndarray:
        """Source node of every directed adjacency slot (length ``2m``)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())

    def expand_frontier(self, frontier: np.ndarray,
                        *, ctx: Optional[ExecutionContext] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather all adjacency slots of the ``frontier`` nodes.

        Returns ``(sources, targets, edge_ids)``: for every directed edge out
        of a frontier node, the frontier node, its neighbour, and the
        undirected edge id.  This is the edge-centric frontier expansion used
        by level-synchronous BFS; it is charged as one gather kernel of
        ``len(result)`` threads.
        """
        ctx = ensure_context(ctx)
        frontier = np.asarray(frontier, dtype=np.int64)
        starts = self.indptr[frontier]
        counts = self.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        # Flat index construction: for each frontier node f with slot range
        # [starts, starts+counts), emit those slots contiguously.
        offsets = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        flat = np.arange(total, dtype=np.int64)
        which = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
        slot = starts[which] + (flat - offsets[which])
        sources = frontier[which]
        targets = self.indices[slot]
        eids = self.edge_ids[slot]
        ctx.kernel(
            "frontier_expand",
            threads=total,
            ops=3.0 * total,
            bytes_read=float(total) * 24.0 + float(frontier.nbytes) * 2,
            bytes_written=float(total) * 24.0,
            launches=2,
            random_access=True,
        )
        return sources, targets, eids

    def to_edgelist(self) -> EdgeList:
        """Reconstruct the undirected edge list (one entry per undirected edge)."""
        src = self.halfedge_sources()
        dst = self.indices
        keep = src <= dst
        # Parallel edges between the same pair appear once per undirected id.
        eids = self.edge_ids[keep]
        order = np.argsort(eids, kind="stable")
        uniq, first = np.unique(eids[order], return_index=True)
        del uniq
        u = src[keep][order][first]
        v = dst[keep][order][first]
        return EdgeList(u, v, self.n)
