"""Graph substrate: representations, generators, traversal and characterization."""

from .bfs import BFSResult, bfs, bfs_cpu, bfs_gpu
from .components import (
    SpanningForest,
    connected_components,
    count_components,
    is_connected,
    largest_connected_component,
    spanning_forest,
)
from .csr import CSRGraph
from .edgelist import EdgeList
from .properties import GraphStats, characterize, degree_statistics, is_tree, pseudo_diameter
from .trees import (
    NO_PARENT,
    average_depth,
    brute_force_lca,
    depths_from_parents,
    edgelist_to_parents,
    generate_random_queries,
    parents_to_edgelist,
    random_relabel_tree,
    relabel_tree,
    subtree_sizes_from_parents,
    tree_height,
    tree_root,
    validate_parents,
)
from . import generators
from . import io

__all__ = [
    "EdgeList",
    "CSRGraph",
    "BFSResult",
    "bfs",
    "bfs_gpu",
    "bfs_cpu",
    "SpanningForest",
    "connected_components",
    "spanning_forest",
    "largest_connected_component",
    "count_components",
    "is_connected",
    "GraphStats",
    "characterize",
    "pseudo_diameter",
    "degree_statistics",
    "is_tree",
    "NO_PARENT",
    "validate_parents",
    "tree_root",
    "parents_to_edgelist",
    "edgelist_to_parents",
    "depths_from_parents",
    "subtree_sizes_from_parents",
    "average_depth",
    "tree_height",
    "relabel_tree",
    "random_relabel_tree",
    "brute_force_lca",
    "generate_random_queries",
    "generators",
    "io",
]
