"""Connected components and spanning forests in hook-and-compress style.

The Tarjan–Vishkin bridge algorithm and the hybrid algorithm both need "a
GPU-optimized connected components algorithm … which constructs a spanning
tree as a byproduct" (paper §4.1, citing Jaiganesh & Burtscher's ECL-CC).
This module provides the equivalent substitute (see DESIGN.md §2): a
Borůvka-flavoured hook-and-compress procedure that runs in ``O(log n)``
bulk-synchronous rounds, emits component labels, and records which edges
performed successful hooks — exactly a spanning forest.

Also provided: plain label-propagation connected components (used where no
tree is needed) and largest-connected-component extraction (used to
preprocess every bridge dataset, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..device import ExecutionContext, ensure_context
from ..errors import InvalidGraphError
from .edgelist import EdgeList


def _compress_labels(labels: np.ndarray, ctx: ExecutionContext, name: str) -> np.ndarray:
    """Pointer-jump ``labels`` until every node points directly at a root."""
    rounds = 0
    n = labels.size
    while True:
        parent = labels[labels]
        changed = parent != labels
        ctx.kernel(
            name,
            threads=n,
            ops=2.0 * n,
            bytes_read=2.0 * n * 8,
            bytes_written=1.0 * n * 8,
            launches=1,
            random_access=True,
        )
        if not changed.any():
            return labels
        labels = parent
        rounds += 1
        if rounds > 2 * int(np.ceil(np.log2(max(n, 2)))) + 4:  # pragma: no cover
            raise InvalidGraphError("label compression failed to converge")


def connected_components(edges: EdgeList,
                         *, ctx: Optional[ExecutionContext] = None) -> np.ndarray:
    """Component label of every node (labels are component-minimum node ids).

    Hook-and-compress: repeatedly hook the larger endpoint label to the
    smaller across every edge, then fully compress, until no edge crosses two
    labels.  ``O(log n)`` rounds on any graph.
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    labels = np.arange(n, dtype=np.int64)
    if m == 0 or n == 0:
        return labels
    u, v = edges.u, edges.v
    rounds = 0
    worklist_size = m  # ECL-CC-style worklist (see spanning_forest)
    while True:
        lu = labels[u]
        lv = labels[v]
        cross = lu != lv
        ctx.kernel(
            "cc_gather_labels",
            threads=max(int(worklist_size), 1),
            ops=2.0 * worklist_size,
            bytes_read=4.0 * worklist_size * 8,
            bytes_written=float(worklist_size),
            launches=1,
            random_access=True,
        )
        worklist_size = int(cross.sum())
        if not cross.any():
            break
        hi = np.maximum(lu[cross], lv[cross])
        lo = np.minimum(lu[cross], lv[cross])
        np.minimum.at(labels, hi, lo)
        ctx.kernel(
            "cc_hook",
            threads=int(cross.sum()),
            ops=2.0 * cross.sum(),
            bytes_read=2.0 * cross.sum() * 8,
            bytes_written=1.0 * cross.sum() * 8,
            launches=1,
            random_access=True,
        )
        labels = _compress_labels(labels, ctx, "cc_compress")
        rounds += 1
        if rounds > 2 * int(np.ceil(np.log2(max(n, 2)))) + 4:  # pragma: no cover
            raise InvalidGraphError("connected components failed to converge")
    return labels


@dataclass
class SpanningForest:
    """Result of :func:`spanning_forest`.

    Attributes
    ----------
    labels:
        Component label of every node (component-minimum node id).
    tree_edge_mask:
        Boolean mask over the input edge list: true for edges selected into
        the spanning forest.  Exactly ``n - #components`` entries are true.
    num_components:
        Number of connected components found.
    """

    labels: np.ndarray
    tree_edge_mask: np.ndarray
    num_components: int

    @property
    def tree_edges(self) -> np.ndarray:
        """Indices of the selected spanning-forest edges."""
        return np.flatnonzero(self.tree_edge_mask)


def spanning_forest(edges: EdgeList,
                    *, ctx: Optional[ExecutionContext] = None) -> SpanningForest:
    """Connected components with a spanning forest as a byproduct.

    Borůvka-style rounds: every component proposes its minimum-index incident
    cross edge, winners hook larger roots onto smaller roots, labels are
    compressed, and the winning edges are recorded as forest edges.  Because
    each round keys proposals by the larger root, every accepted edge performs
    a genuine merge and the output can never contain a cycle.
    """
    ctx = ensure_context(ctx)
    n, m = edges.num_nodes, edges.num_edges
    labels = np.arange(n, dtype=np.int64)
    tree_edge_mask = np.zeros(m, dtype=bool)
    if n == 0:
        return SpanningForest(labels, tree_edge_mask, 0)
    if m == 0:
        return SpanningForest(labels, tree_edge_mask, n)

    u, v = edges.u, edges.v
    edge_idx = np.arange(m, dtype=np.int64)
    rounds = 0
    worklist_size = m  # ECL-CC-style worklist: later rounds only revisit edges
    # that still crossed two components at the end of the previous round.
    while True:
        lu = labels[u]
        lv = labels[v]
        cross = lu != lv
        ctx.kernel(
            "sf_gather_labels",
            threads=max(int(worklist_size), 1),
            ops=2.0 * worklist_size,
            bytes_read=4.0 * worklist_size * 8,
            bytes_written=float(worklist_size),
            launches=1,
            random_access=True,
        )
        worklist_size = int(cross.sum())
        if not cross.any():
            break
        big = np.maximum(lu[cross], lv[cross])
        cand_edges = edge_idx[cross]
        # Each "big" root picks the smallest-index cross edge incident to it.
        best_edge = np.full(n, m, dtype=np.int64)
        np.minimum.at(best_edge, big, cand_edges)
        winners = np.flatnonzero(best_edge < m)  # the big roots that hook
        winning_edges = best_edge[winners]
        # Recover, for each winning edge, which endpoint root is the small one.
        wu = labels[u[winning_edges]]
        wv = labels[v[winning_edges]]
        small_root = np.minimum(wu, wv)
        labels[winners] = small_root
        tree_edge_mask[winning_edges] = True
        ctx.kernel(
            "sf_hook",
            threads=int(cross.sum()),
            ops=4.0 * cross.sum(),
            bytes_read=4.0 * cross.sum() * 8,
            bytes_written=2.0 * winners.size * 8,
            launches=2,
            random_access=True,
        )
        labels = _compress_labels(labels, ctx, "sf_compress")
        rounds += 1
        if rounds > 2 * int(np.ceil(np.log2(max(n, 2)))) + 8:  # pragma: no cover
            raise InvalidGraphError("spanning forest construction failed to converge")

    num_components = int(np.unique(labels).size)
    expected_tree_edges = n - num_components
    if int(tree_edge_mask.sum()) != expected_tree_edges:  # pragma: no cover - invariant
        raise InvalidGraphError(
            "spanning forest invariant violated: "
            f"{int(tree_edge_mask.sum())} tree edges for {num_components} components"
        )
    return SpanningForest(labels, tree_edge_mask, num_components)


def largest_connected_component(edges: EdgeList,
                                *, ctx: Optional[ExecutionContext] = None
                                ) -> Tuple[EdgeList, np.ndarray]:
    """Extract the largest connected component (paper §4.2 preprocessing).

    Returns the induced subgraph with densely renumbered nodes, plus the array
    of original node ids.  Isolated nodes count as size-1 components.
    """
    ctx = ensure_context(ctx)
    labels = connected_components(edges, ctx=ctx)
    if labels.size == 0:
        return edges.copy(), np.empty(0, dtype=np.int64)
    uniq, counts = np.unique(labels, return_counts=True)
    biggest = uniq[int(np.argmax(counts))]
    mask = labels == biggest
    sub, old_ids = edges.subgraph(mask)
    return sub, old_ids


def count_components(edges: EdgeList,
                     *, ctx: Optional[ExecutionContext] = None) -> int:
    """Number of connected components of the graph."""
    labels = connected_components(edges, ctx=ctx)
    if labels.size == 0:
        return 0
    return int(np.unique(labels).size)


def is_connected(edges: EdgeList, *, ctx: Optional[ExecutionContext] = None) -> bool:
    """True when the graph has at most one connected component."""
    return count_components(edges, ctx=ctx) <= 1
