"""Graph characterization helpers: the statistics reported in the paper's Table 1.

Nodes, edges, bridge count and diameter of the largest connected component are
what the paper tabulates for every bridge-finding dataset; this module
computes them (the bridge count delegates to the sequential DFS oracle in
:mod:`repro.bridges`, imported lazily to avoid a package cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..device import ExecutionContext
from .bfs import bfs_cpu
from .components import largest_connected_component
from .csr import CSRGraph
from .edgelist import EdgeList


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (largest-CC convention, like Table 1)."""

    name: str
    nodes: int
    edges: int
    bridges: int
    diameter: int
    avg_degree: float
    max_degree: int

    def as_row(self) -> Dict[str, object]:
        """Dictionary row for tabular reports."""
        return {
            "graph": self.name,
            "nodes": self.nodes,
            "edges": self.edges,
            "bridges": self.bridges,
            "diameter": self.diameter,
            "avg_degree": round(self.avg_degree, 2),
            "max_degree": self.max_degree,
        }


def pseudo_diameter(edges: EdgeList, *, sweeps: int = 2,
                    ctx: Optional[ExecutionContext] = None) -> int:
    """Lower-bound diameter estimate by repeated double-sweep BFS.

    Starts from the highest-degree node, repeatedly jumps to the farthest node
    found and re-runs BFS; ``sweeps`` controls the number of jumps.  Exact on
    trees, a tight lower bound in practice on the graph families used here —
    the same technique experimental papers (including the datasets the paper
    tabulates) typically use to report "diameter".
    """
    if edges.num_nodes == 0:
        return 0
    graph = CSRGraph.from_edgelist(edges)
    deg = graph.degrees()
    start = int(np.argmax(deg))
    best = 0
    source = start
    for _ in range(max(1, sweeps)):
        result = bfs_cpu(graph, source, ctx=ctx)
        reached_levels = result.levels[result.levels >= 0]
        if reached_levels.size == 0:
            break
        ecc = int(reached_levels.max())
        best = max(best, ecc)
        source = int(np.argmax(np.where(result.levels >= 0, result.levels, -1)))
    return best


def degree_statistics(edges: EdgeList) -> Dict[str, float]:
    """Average / maximum / minimum degree of the graph."""
    if edges.num_nodes == 0:
        return {"avg": 0.0, "max": 0, "min": 0}
    deg = edges.degrees()
    return {"avg": float(deg.mean()), "max": int(deg.max()), "min": int(deg.min())}


def characterize(edges: EdgeList, name: str = "graph", *, restrict_to_lcc: bool = True,
                 diameter_sweeps: int = 2,
                 ctx: Optional[ExecutionContext] = None) -> GraphStats:
    """Compute the Table 1 statistics for a graph.

    When ``restrict_to_lcc`` is true (the paper's convention), statistics are
    computed on the largest connected component.
    """
    from ..bridges.dfs_cpu import find_bridges_dfs  # local import: avoids package cycle

    work = edges.deduplicated()
    if restrict_to_lcc and work.num_nodes:
        work, _ = largest_connected_component(work, ctx=ctx)
    deg = degree_statistics(work)
    bridges_mask = (
        find_bridges_dfs(work).bridge_mask if work.num_edges else np.zeros(0, dtype=bool)
    )
    return GraphStats(
        name=name,
        nodes=work.num_nodes,
        edges=work.num_edges,
        bridges=int(bridges_mask.sum()),
        diameter=pseudo_diameter(work, sweeps=diameter_sweeps, ctx=ctx),
        avg_degree=deg["avg"],
        max_degree=int(deg["max"]),
    )


def is_tree(edges: EdgeList) -> bool:
    """True when the graph is a tree (connected, exactly ``n - 1`` edges)."""
    from .components import is_connected

    if edges.num_nodes == 0:
        return False
    simple = edges.deduplicated()
    if simple.num_edges != edges.num_edges:
        return False
    return edges.num_edges == edges.num_nodes - 1 and is_connected(edges)
