"""Experiment runners for the bridge-finding evaluation (paper §4, Table 1, Figures 9–11).

| Function | Paper content |
|---|---|
| :func:`dataset_table`         | Table 1 (dataset statistics)                      |
| :func:`kronecker_comparison`  | Figure 9 (total time on Kronecker graphs)         |
| :func:`realworld_comparison`  | Figure 10 (total time on real-world graph stand-ins) |
| :func:`breakdown`             | Figure 11 (per-phase breakdown of the GPU algorithms) |

All runners operate on the synthetic stand-ins from
:mod:`repro.experiments.datasets`; rows include the paper's published values
next to the measured ones so EXPERIMENTS.md can be generated directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..device import PhaseBreakdown
from ..graphs.properties import characterize
from .datasets import (
    BREAKDOWN_DATASETS,
    KRONECKER_DATASETS,
    REALWORLD_DATASETS,
    get_dataset_spec,
    load_dataset,
)
from .runner import (
    BREAKDOWN_BRIDGE_ALGORITHMS,
    BRIDGE_ALGORITHMS,
    FIGURE_BRIDGE_ALGORITHMS,
    run_bridges,
)


def dataset_table(names: Optional[Sequence[str]] = None, *,
                  scale: Optional[float] = None) -> List[Dict[str, object]]:
    """Table 1: nodes, edges, bridges and diameter of every dataset's largest CC.

    Each row also carries the corresponding statistics published in the paper
    for the original graph the stand-in replaces.
    """
    names = list(KRONECKER_DATASETS + REALWORLD_DATASETS) if names is None else list(names)
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = get_dataset_spec(name)
        graph = load_dataset(name, scale=scale)
        stats = characterize(graph, name, restrict_to_lcc=False)
        paper_nodes, paper_edges, paper_bridges, paper_diameter = spec.paper_stats
        rows.append({
            "dataset": name,
            "paper_graph": spec.paper_name,
            "nodes": stats.nodes,
            "edges": stats.edges,
            "bridges": stats.bridges,
            "diameter": stats.diameter,
            "paper_nodes": paper_nodes,
            "paper_edges": paper_edges,
            "paper_bridges": paper_bridges,
            "paper_diameter": paper_diameter,
        })
    return rows


def _comparison(names: Sequence[str], algorithms: Sequence[str], *,
                scale: Optional[float], check_agreement: bool
                ) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name in names:
        graph = load_dataset(name, scale=scale)
        for record in run_bridges(graph, dataset=name, algorithms=algorithms,
                                  check_agreement=check_agreement):
            rows.append(record.as_row())
    return rows


def kronecker_comparison(names: Optional[Sequence[str]] = None, *,
                         algorithms: Sequence[str] = tuple(FIGURE_BRIDGE_ALGORITHMS),
                         scale: Optional[float] = None,
                         check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figure 9: total bridge-finding time on the Kronecker graph family."""
    names = list(KRONECKER_DATASETS) if names is None else list(names)
    return _comparison(names, algorithms, scale=scale, check_agreement=check_agreement)


def realworld_comparison(names: Optional[Sequence[str]] = None, *,
                         algorithms: Sequence[str] = tuple(FIGURE_BRIDGE_ALGORITHMS),
                         scale: Optional[float] = None,
                         check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figure 10: total bridge-finding time on the real-world graph stand-ins."""
    names = list(REALWORLD_DATASETS) if names is None else list(names)
    return _comparison(names, algorithms, scale=scale, check_agreement=check_agreement)


def breakdown(names: Optional[Sequence[str]] = None, *,
              algorithms: Sequence[str] = tuple(BREAKDOWN_BRIDGE_ALGORITHMS),
              scale: Optional[float] = None,
              check_agreement: bool = True) -> List[PhaseBreakdown]:
    """Figure 11: per-phase running-time breakdown of the GPU bridge algorithms.

    Returns one :class:`~repro.device.PhaseBreakdown` per (dataset, algorithm)
    pair, labelled ``"<dataset> / <algorithm>"`` — the textual equivalent of
    the paper's stacked bars.
    """
    names = list(BREAKDOWN_DATASETS) if names is None else list(names)
    results: List[PhaseBreakdown] = []
    for name in names:
        graph = load_dataset(name, scale=scale)
        records = run_bridges(graph, dataset=name, algorithms=algorithms,
                              check_agreement=check_agreement)
        for record in records:
            results.append(PhaseBreakdown(
                label=f"{name} / {record.label}",
                phases=tuple(record.phase_times.items()),
            ))
    return results


def speedup_summary(rows: Sequence[Dict[str, object]],
                    baseline_label: str = "Single-core CPU DFS",
                    target_label: str = "GPU TV") -> List[Dict[str, object]]:
    """Summarize per-dataset speedups of one algorithm over another.

    Works on the row lists produced by the comparison runners; used to verify
    headline claims such as "TV shows 4–12× speedups over the single-core DFS
    implementation".
    """
    by_dataset: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_dataset.setdefault(str(row["dataset"]), {})[str(row["algorithm"])] = float(
            row["total_ms"]
        )
    out: List[Dict[str, object]] = []
    for dataset, times in by_dataset.items():
        if baseline_label in times and target_label in times and times[target_label] > 0:
            out.append({
                "dataset": dataset,
                "baseline": baseline_label,
                "target": target_label,
                "speedup": round(times[baseline_label] / times[target_label], 2),
            })
    return out


#: Registry key → label mapping re-exported for report formatting.
ALGORITHM_LABELS = {key: spec.label for key, spec in BRIDGE_ALGORITHMS.items()}
