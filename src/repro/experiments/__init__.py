"""Experiment harness: dataset registry, per-figure runners and report formatting."""

from . import bridges_experiments, lca_experiments, service_experiments
from .datasets import (
    BREAKDOWN_DATASETS,
    DATASETS,
    KRONECKER_DATASETS,
    REALWORLD_DATASETS,
    DatasetSpec,
    get_dataset_spec,
    list_datasets,
    load_dataset,
)
from .report import format_rows, format_series, pivot_rows
from .service_experiments import (
    offered_load_sweep,
    replica_scaling_sweep,
    scenario_suite,
    serve_query_stream,
)
from .runner import (
    BRIDGE_ALGORITHMS,
    BREAKDOWN_BRIDGE_ALGORITHMS,
    FIGURE_BRIDGE_ALGORITHMS,
    LCA_ALGORITHMS,
    LCA_PRELIMINARY_ALGORITHMS,
    BridgeRunRecord,
    LCARunRecord,
    run_bridges,
    run_lca,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "KRONECKER_DATASETS",
    "REALWORLD_DATASETS",
    "BREAKDOWN_DATASETS",
    "list_datasets",
    "get_dataset_spec",
    "load_dataset",
    "LCA_ALGORITHMS",
    "LCA_PRELIMINARY_ALGORITHMS",
    "BRIDGE_ALGORITHMS",
    "FIGURE_BRIDGE_ALGORITHMS",
    "BREAKDOWN_BRIDGE_ALGORITHMS",
    "LCARunRecord",
    "BridgeRunRecord",
    "run_lca",
    "run_bridges",
    "lca_experiments",
    "bridges_experiments",
    "service_experiments",
    "offered_load_sweep",
    "replica_scaling_sweep",
    "scenario_suite",
    "serve_query_stream",
    "format_rows",
    "format_series",
    "pivot_rows",
]
