"""Dataset registry for the bridge-finding experiments (paper §4.2, Table 1).

The paper evaluates on 16 graphs in three families: Graph500 Kronecker graphs,
real-world web/social/citation/collaboration networks, and DIMACS road
networks.  None of the original downloads are available offline, so every
dataset is replaced by a synthetic stand-in from the same structural family
(see DESIGN.md §2 for the substitution argument), scaled down by roughly
32–64× so the pure-Python simulation stays fast.  The registry records, for
every stand-in, the original graph it replaces and the paper's published
statistics, so Table 1 can be regenerated side by side with the original
numbers.

All generators are deterministic given the registry's fixed seeds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..graphs.components import largest_connected_component
from ..graphs.edgelist import EdgeList
from ..graphs.generators import (
    collaboration_graph,
    citation_graph,
    rmat_graph,
    road_graph_with_target_size,
    social_graph,
    web_graph,
)

#: Environment variable that scales every dataset's node count (default 1.0).
SCALE_ENV_VAR = "REPRO_DATASET_SCALE"


@dataclass(frozen=True)
class DatasetSpec:
    """A registered bridge-finding dataset stand-in.

    Attributes
    ----------
    name:
        Registry key (also used in benchmark output).
    category:
        ``"kronecker"``, ``"social"`` or ``"road"``.
    paper_name:
        Name of the original graph in the paper's Table 1.
    paper_stats:
        ``(nodes, edges, bridges, diameter)`` as published in Table 1.
    builder:
        Zero-argument callable producing the synthetic stand-in
        (before largest-connected-component extraction).
    """

    name: str
    category: str
    paper_name: str
    paper_stats: Tuple[int, int, int, int]
    builder: Callable[[float], EdgeList]


def _scale() -> float:
    value = os.environ.get(SCALE_ENV_VAR, "1.0")
    try:
        scale = float(value)
    except ValueError as exc:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be a float, got {value!r}") from exc
    if scale <= 0:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be positive")
    return scale


def _kron_builder(scale_exp: int, edge_factor: int, seed: int):
    def build(scale: float) -> EdgeList:
        # Scaling a Kronecker graph means shifting its scale exponent; only
        # whole shifts are meaningful, so the multiplier is applied to the
        # edge factor below 2x.
        ef = max(2, int(round(edge_factor * min(scale, 1.0))))
        exp = scale_exp
        while scale >= 2.0 and exp < 24:
            exp += 1
            scale /= 2.0
        return rmat_graph(exp, edge_factor=ef, seed=seed)

    return build


def _social_builder(kind: Callable[..., EdgeList], n: int, seed: int):
    def build(scale: float) -> EdgeList:
        return kind(max(64, int(n * scale)), seed=seed)

    return build


def _road_builder(n: int, removal: float, subdivide: float, seed: int,
                  deadend: float = 0.5):
    def build(scale: float) -> EdgeList:
        graph, _ = road_graph_with_target_size(
            max(64, int(n * scale)), removal_fraction=removal,
            subdivide_fraction=subdivide, deadend_fraction=deadend, seed=seed,
        )
        return graph

    return build


#: The 16 datasets of the paper's Table 1, in the paper's order.
DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# --- Kronecker family (paper: kron_g500-logn16 … logn21) --------------------
for _logn, _paper in [
    (10, ("kron_g500-logn16", (55_000, 4_900_000, 12_000, 6))),
    (11, ("kron_g500-logn17", (107_000, 10_000_000, 26_000, 6))),
    (12, ("kron_g500-logn18", (210_000, 21_000_000, 54_000, 6))),
    (13, ("kron_g500-logn19", (409_000, 43_000_000, 113_000, 7))),
    (14, ("kron_g500-logn20", (795_000, 89_000_000, 233_000, 7))),
    (15, ("kron_g500-logn21", (1_500_000, 182_000_000, 477_000, 7))),
]:
    _register(
        DatasetSpec(
            name=f"kron-s{_logn}",
            category="kronecker",
            paper_name=_paper[0],
            paper_stats=_paper[1],
            builder=_kron_builder(_logn, edge_factor=32, seed=100 + _logn),
        )
    )

# --- Web / social / citation / collaboration family -------------------------
_register(DatasetSpec(
    name="web-wikipedia-like", category="social", paper_name="web-wikipedia2009",
    paper_stats=(1_800_000, 9_000_000, 1_400_000, 323),
    builder=_social_builder(web_graph, 56_000, seed=201),
))
_register(DatasetSpec(
    name="cit-patents-like", category="social", paper_name="cit-Patents",
    paper_stats=(3_700_000, 33_000_000, 1_300_000, 26),
    builder=_social_builder(citation_graph, 80_000, seed=202),
))
_register(DatasetSpec(
    name="socfb-like", category="social", paper_name="socfb-A-anon",
    paper_stats=(3_000_000, 47_000_000, 3_300_000, 12),
    builder=_social_builder(social_graph, 48_000, seed=203),
))
_register(DatasetSpec(
    name="soc-livejournal-like", category="social", paper_name="soc-LiveJournal1",
    paper_stats=(4_800_000, 85_000_000, 2_200_000, 20),
    builder=_social_builder(social_graph, 75_000, seed=204),
))
_register(DatasetSpec(
    name="ca-hollywood-like", category="social", paper_name="ca-hollywood-2009",
    paper_stats=(1_000_000, 112_000_000, 23_000, 12),
    builder=_social_builder(collaboration_graph, 32_000, seed=205),
))

# --- Road family (paper: DIMACS USA road graphs + GB OSM) -------------------
_register(DatasetSpec(
    name="road-east-like", category="road", paper_name="USA-road-d.E",
    paper_stats=(3_500_000, 8_700_000, 2_200_000, 4_000),
    builder=_road_builder(64_000, removal=0.45, subdivide=0.10, seed=301),
))
_register(DatasetSpec(
    name="road-west-like", category="road", paper_name="USA-road-d.W",
    paper_stats=(6_200_000, 15_000_000, 3_800_000, 4_000),
    builder=_road_builder(96_000, removal=0.45, subdivide=0.10, seed=302),
))
_register(DatasetSpec(
    name="road-gb-like", category="road", paper_name="great-britain-osm",
    paper_stats=(7_700_000, 16_000_000, 4_800_000, 9_000),
    builder=_road_builder(120_000, removal=0.55, subdivide=0.15, seed=303),
))
_register(DatasetSpec(
    name="road-ctr-like", category="road", paper_name="USA-road-d.CTR",
    paper_stats=(14_000_000, 34_000_000, 8_500_000, 6_000),
    builder=_road_builder(160_000, removal=0.45, subdivide=0.10, seed=304),
))
_register(DatasetSpec(
    name="road-usa-like", category="road", paper_name="USA-road-d.USA",
    paper_stats=(23_000_000, 58_000_000, 14_000_000, 9_000),
    builder=_road_builder(220_000, removal=0.45, subdivide=0.10, seed=305),
))


#: Subsets matching the paper's figures.
KRONECKER_DATASETS: List[str] = [name for name, s in DATASETS.items() if s.category == "kronecker"]
REALWORLD_DATASETS: List[str] = [name for name, s in DATASETS.items()
                                 if s.category in ("social", "road")]
#: The subset used in the Figure 11 breakdown (the paper drops the smallest kron graphs).
BREAKDOWN_DATASETS: List[str] = KRONECKER_DATASETS[3:] + REALWORLD_DATASETS


def list_datasets(category: Optional[str] = None) -> List[str]:
    """Names of registered datasets, optionally filtered by category."""
    if category is None:
        return list(DATASETS)
    return [name for name, spec in DATASETS.items() if spec.category == category]


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def load_dataset(name: str, *, scale: Optional[float] = None,
                 largest_cc: bool = True) -> EdgeList:
    """Generate a dataset stand-in (largest connected component by default).

    ``scale`` multiplies the default node count; when omitted it is read from
    the ``REPRO_DATASET_SCALE`` environment variable (default 1.0), so the
    whole benchmark suite can be scaled up or down without code changes.
    """
    spec = get_dataset_spec(name)
    effective_scale = _scale() if scale is None else scale
    if effective_scale <= 0:
        raise ConfigurationError("scale must be positive")
    graph = spec.builder(effective_scale)
    if largest_cc:
        graph, _ = largest_connected_component(graph)
    return graph
