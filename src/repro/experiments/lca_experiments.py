"""Experiment runners for every LCA figure in the paper (§3.3).

Each function regenerates one figure's data as a list of flat dictionary rows
(one per plotted point), with modeled times from the simulated devices.  The
default instance sizes are scaled down ~32× from the paper (the throughput
plots are per-node/per-query, and the paper itself observes they are flat in
``n``); pass explicit ``sizes``/``n`` to run at other scales.

| Function | Paper figure |
|---|---|
| :func:`general_comparison`     | Fig. 3a–3d (shallow / deep trees)          |
| :func:`queries_to_nodes_ratio` | Fig. 4                                     |
| :func:`depth_sweep`            | Fig. 5                                     |
| :func:`batch_size_sweep`       | Fig. 6                                     |
| :func:`scale_free_comparison`  | Fig. 7–8                                   |
| :func:`cpu_preliminary`        | §3.1 preliminary single-core comparison    |
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..device import ExecutionContext
from ..graphs.generators import (
    INFINITE_GRASP,
    barabasi_albert_tree,
    grasp_for_target_depth,
    grasp_tree,
    random_attachment_tree,
)
from ..graphs.trees import generate_random_queries
from ..lca import run_batched_queries
from .runner import LCA_ALGORITHMS, LCA_PRELIMINARY_ALGORITHMS, run_lca

#: Default tree sizes: the paper sweeps 1M–32M; the scaled default is 32K–1M.
DEFAULT_SIZES = (32_768, 65_536, 131_072, 262_144, 524_288, 1_048_576)
#: Grasp value whose average depth, relative to n, matches the paper's γ=1000
#: at the 32× smaller default scale (depth ≈ n / 32).
DEFAULT_DEEP_GRASP = 31


def _make_tree(kind: str, n: int, seed: int, grasp: Optional[float]) -> np.ndarray:
    if kind == "shallow":
        return random_attachment_tree(n, seed=seed)
    if kind == "deep":
        return grasp_tree(n, DEFAULT_DEEP_GRASP if grasp is None else grasp, seed=seed)
    if kind == "scale-free":
        return barabasi_albert_tree(n, seed=seed)
    raise ValueError(f"unknown tree kind {kind!r}")


def general_comparison(sizes: Sequence[int] = DEFAULT_SIZES, *, tree_kind: str = "shallow",
                       grasp: Optional[float] = None, queries_per_node: float = 1.0,
                       seed: int = 0, algorithms: Optional[Sequence[str]] = None,
                       check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figures 3a–3d (and 7–8 with ``tree_kind="scale-free"``).

    For every tree size, run all four algorithms on the same tree and query
    batch and report preprocessing and query throughput.
    """
    rows: List[Dict[str, object]] = []
    for n in sizes:
        parents = _make_tree(tree_kind, int(n), seed + n, grasp)
        q = max(1, int(round(queries_per_node * n)))
        xs, ys = generate_random_queries(int(n), q, seed=seed + n + 1)
        for record in run_lca(parents, xs, ys, algorithms,
                              check_agreement=check_agreement):
            row = record.as_row()
            row["tree_kind"] = tree_kind
            rows.append(row)
    return rows


def scale_free_comparison(sizes: Sequence[int] = DEFAULT_SIZES, *, seed: int = 0,
                          algorithms: Optional[Sequence[str]] = None,
                          check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figures 7–8: the general comparison on Barabási–Albert trees."""
    return general_comparison(sizes, tree_kind="scale-free", seed=seed,
                              algorithms=algorithms, check_agreement=check_agreement)


def queries_to_nodes_ratio(n: int = 262_144,
                           ratios: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
                           *, seed: int = 0,
                           algorithms: Sequence[str] = ("gpu-naive", "gpu-inlabel"),
                           check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figure 4: total time vs queries-to-nodes ratio on a shallow tree.

    The paper fixes 8M nodes and sweeps 1M–128M queries; the scaled default
    fixes 256K nodes and keeps the same ratios, reporting the combined
    preprocessing-plus-query time of the two GPU algorithms.
    """
    parents = random_attachment_tree(n, seed=seed)
    rows: List[Dict[str, object]] = []
    for ratio in ratios:
        q = max(1, int(round(ratio * n)))
        xs, ys = generate_random_queries(n, q, seed=seed + q)
        for record in run_lca(parents, xs, ys, algorithms,
                              check_agreement=check_agreement):
            row = record.as_row()
            row["ratio"] = ratio
            rows.append(row)
    return rows


def depth_sweep(n: int = 65_536, q: Optional[int] = None,
                target_depths: Optional[Sequence[float]] = None, *, seed: int = 0,
                algorithms: Sequence[str] = ("gpu-naive", "gpu-inlabel"),
                check_agreement: bool = True) -> List[Dict[str, object]]:
    """Figure 5: total time vs average tree depth.

    The paper fixes nodes = queries = 8M and sweeps the grasp parameter so the
    average depth ranges from ~16 to ~4·10⁶; the scaled default fixes 64K and
    sweeps the depth from ``ln n`` to ``n/2`` on the same logarithmic grid.
    """
    q = n if q is None else q
    if target_depths is None:
        target_depths = [
            float(np.log(n)), 32.0, 128.0, 512.0, 2048.0, 8192.0, n / 8.0, n / 2.0,
        ]
    rows: List[Dict[str, object]] = []
    for depth in target_depths:
        gamma = grasp_for_target_depth(n, depth)
        parents = (random_attachment_tree(n, seed=seed)
                   if gamma == INFINITE_GRASP else grasp_tree(n, gamma, seed=seed))
        xs, ys = generate_random_queries(n, q, seed=seed + int(depth) + 1)
        for record in run_lca(parents, xs, ys, algorithms,
                              check_agreement=check_agreement):
            row = record.as_row()
            row["target_avg_depth"] = round(float(depth), 1)
            row["grasp"] = "inf" if gamma == INFINITE_GRASP else int(gamma)
            rows.append(row)
    return rows


def batch_size_sweep(n: int = 262_144, q: int = 327_680,
                     batch_sizes: Sequence[int] = (1, 10, 100, 1_000, 10_000, 100_000, 327_680),
                     *, seed: int = 0,
                     algorithms: Sequence[str] = ("cpu1-inlabel", "cpum-inlabel", "gpu-inlabel"),
                     max_batches_per_size: int = 512) -> List[Dict[str, object]]:
    """Figure 6: Inlabel query throughput vs batch size.

    The paper preprocesses an 8M-node shallow tree once, then replays 10M
    random queries in batches of 1 … 10⁷ on the single-core CPU, multi-core
    CPU and GPU Inlabel implementations.  The scaled default uses 256K nodes
    and 320K queries.  ``max_batches_per_size`` bounds how many batches are
    actually simulated per point (remaining batches are extrapolated — they
    are statistically identical).
    """
    parents = random_attachment_tree(n, seed=seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    rows: List[Dict[str, object]] = []
    for key in algorithms:
        spec = LCA_ALGORITHMS[key]
        pre_ctx = ExecutionContext(spec.device)
        algo = spec.factory(parents, pre_ctx)
        for batch in batch_sizes:
            result = run_batched_queries(algo, xs, ys, int(batch), spec.device,
                                         keep_answers=False,
                                         max_batches=max_batches_per_size)
            rows.append({
                "algorithm": spec.label,
                "n": n,
                "q": q,
                "batch_size": int(batch),
                "query_time_ms": round(result.modeled_time_s * 1e3, 3),
                "queries_per_s": float(f"{result.queries_per_second:.4g}"),
            })
    return rows


def cpu_preliminary(n: int = 65_536, *, queries_per_node: float = 1.0,
                    seed: int = 0) -> List[Dict[str, object]]:
    """§3.1 preliminary experiment: sequential Inlabel vs RMQ-based LCA.

    The paper reports that the RMQ-based algorithm preprocesses about 2×
    faster while the Inlabel algorithm answers queries about 3× faster, so the
    two draw when the number of queries equals the number of nodes.
    """
    parents = random_attachment_tree(n, seed=seed)
    q = max(1, int(round(queries_per_node * n)))
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    rows: List[Dict[str, object]] = []
    reference = None
    for key, spec in LCA_PRELIMINARY_ALGORITHMS.items():
        pre_ctx = ExecutionContext(spec.device)
        algo = spec.factory(parents, pre_ctx)
        query_ctx = ExecutionContext(spec.device)
        answers = algo.query(xs, ys, ctx=query_ctx)
        if reference is None:
            reference = answers
        elif not np.array_equal(reference, answers):
            raise AssertionError("preliminary LCA algorithms disagree")
        rows.append({
            "algorithm": spec.label,
            "n": n,
            "q": q,
            "preprocess_ms": round(pre_ctx.elapsed * 1e3, 3),
            "query_ms": round(query_ctx.elapsed * 1e3, 3),
            "total_ms": round((pre_ctx.elapsed + query_ctx.elapsed) * 1e3, 3),
        })
    return rows
