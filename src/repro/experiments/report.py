"""Plain-text report formatting for experiment results.

The paper presents its results as log-log throughput plots and stacked bars;
this harness prints the same data as aligned text tables (one row per plotted
point) so the numbers can be diffed, regression-tested and pasted into
EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_rows", "pivot_rows", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_rows(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None,
                *, title: Optional[str] = None) -> str:
    """Render a list of dictionary rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    table: List[List[str]] = [list(map(str, columns))]
    for row in rows:
        table.append([_cell(row.get(col, "")) for col in columns])
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pivot_rows(rows: Sequence[Mapping[str, object]], index: str, column: str,
               value: str) -> List[Dict[str, object]]:
    """Pivot long-format rows into wide format.

    Example: pivot Figure 9 rows with ``index="dataset"``,
    ``column="algorithm"``, ``value="total_ms"`` to get one row per dataset
    with one column per algorithm — the layout of the paper's figures.
    """
    order: List[object] = []
    grouped: Dict[object, Dict[str, object]] = {}
    for row in rows:
        key = row[index]
        if key not in grouped:
            grouped[key] = {index: key}
            order.append(key)
        grouped[key][str(row[column])] = row[value]
    return [grouped[key] for key in order]


def format_series(rows: Sequence[Mapping[str, object]], x: str, y: str, series: str,
                  *, title: Optional[str] = None) -> str:
    """Render long-format rows as one wide table with ``x`` rows and ``series`` columns."""
    wide = pivot_rows(rows, index=x, column=series, value=y)
    return format_rows(wide, title=title)
