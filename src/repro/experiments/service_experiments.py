"""Experiment runners for the query-serving subsystem (beyond the paper).

The paper's Figure 6 replays a pre-batched query stream; these experiments
answer the follow-up question a serving system poses: *given queries arriving
one at a time at some offered load, what throughput and tail latency does a
micro-batching policy actually deliver?*  Every run is fully simulated —
deterministic arrivals on the simulated clock, modeled device times — so rows
are reproducible bit for bit.

:func:`wallclock_serve_run` is the exception: it measures *host-side* wall
time — how fast this Python process pushes a query stream through
``submit → drain → results`` — which is what the columnar fast path of
:mod:`repro.service` optimizes.  Modeled device times are unaffected by the
admission mode; wall time is the whole point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import Overloaded, ServiceError
from ..graphs.generators import random_attachment_tree
from ..graphs.trees import generate_random_queries
from ..lca import BinaryLiftingLCA
from ..service import (
    GPU_BATCH_BACKEND,
    ROUTER_POLICIES,
    BatchPolicy,
    ClusterConfig,
    ClusterService,
    CostModelDispatcher,
    LCAQueryService,
    ServiceConfig,
    estimate_batch_query_time,
)
from ..workloads import SCENARIOS, make_scenario, replay

__all__ = [
    "serve_query_stream",
    "offered_load_sweep",
    "wallclock_serve_run",
    "replica_scaling_sweep",
    "scenario_suite",
    "DEFAULT_POLICIES",
]

#: Default (max_batch_size, max_wait_s) policies swept by the benchmark:
#: pass-through, a latency-lean micro-batcher, and a throughput-lean one.
DEFAULT_POLICIES: Tuple[Tuple[int, float], ...] = (
    (1, 0.0),
    (256, 2e-4),
    (8192, 2e-3),
)


def serve_query_stream(parents: np.ndarray, xs: np.ndarray, ys: np.ndarray,
                       arrivals_s: np.ndarray, policy: BatchPolicy, *,
                       check_answers: bool = False) -> Dict[str, object]:
    """Serve one timed query stream through a fresh service; return a stats row.

    When ``check_answers`` is set the service's answers are verified against
    the binary-lifting oracle (slower; meant for tests and spot checks).
    """
    service = LCAQueryService(
        config=ServiceConfig(
            max_batch_size=policy.max_batch_size, max_wait_s=policy.max_wait_s
        ),
        dispatcher=CostModelDispatcher(),
    )
    service.register_tree("stream", parents)
    tickets = service.submit_many("stream", xs, ys, at=arrivals_s)
    service.drain()
    if check_answers:
        expected = BinaryLiftingLCA(parents).query(xs, ys)
        if not np.array_equal(service.results(tickets), expected):
            raise AssertionError("service answers disagree with the oracle")
    stats = service.stats()
    backends = stats.backend_choices
    total_batches = max(stats.batches_flushed, 1)
    return {
        "policy": f"batch<={policy.max_batch_size}, wait<={policy.max_wait_s * 1e6:.0f}us",
        "max_batch_size": policy.max_batch_size,
        "max_wait_us": round(policy.max_wait_s * 1e6, 1),
        "queries": stats.queries_answered,
        "batches": stats.batches_flushed,
        "mean_batch": round(stats.mean_batch_size, 1),
        "gpu_batch_frac": round(backends.get("gpu", 0) / total_batches, 3),
        "throughput_qps": float(f"{stats.throughput_qps:.4g}"),
        "latency_p50_us": round(stats.latency_p50_s * 1e6, 2),
        "latency_p99_us": round(stats.latency_p99_s * 1e6, 2),
        "cache_hit_rate": round(stats.cache_hit_rate, 3),
    }


def wallclock_serve_run(parents: np.ndarray, xs: np.ndarray, ys: np.ndarray,
                        arrivals_s: np.ndarray, policy: BatchPolicy, *,
                        mode: str = "columnar", warm: bool = True,
                        check_answers: bool = False,
                        observer: Optional[object] = None) -> Dict[str, object]:
    """Measure host-side wall-clock throughput of one admission mode.

    ``mode="columnar"`` admits the stream through the vectorized
    :meth:`~repro.service.LCAQueryService.submit_many` block path;
    ``mode="per-query"`` replays the pre-columnar behaviour — a Python loop
    of individual :meth:`~repro.service.LCAQueryService.submit` calls (which
    is exactly what ``submit_many`` used to do).  Both modes produce
    bit-identical tickets, batches, answers and modeled stats; only the wall
    time differs.  The timed region spans submit → drain → results.

    With ``warm`` (the default) the index cache is populated for every
    dispatcher backend *before* the timer starts, so the number reported is
    sustained steady-state throughput rather than one cold index build
    amortized over however long the stream happens to be.

    ``observer`` optionally attaches a
    :class:`~repro.obs.events.TraceRecorder` to the service *inside* the
    timed region's setup, so the overhead benchmark prices tracing with
    this exact harness.
    """
    if mode not in ("columnar", "per-query"):
        raise ServiceError(f"unknown admission mode {mode!r}")
    service = LCAQueryService(
        config=ServiceConfig(
            max_batch_size=policy.max_batch_size, max_wait_s=policy.max_wait_s
        ),
        dispatcher=CostModelDispatcher(),
    )
    if observer is not None:
        from ..obs.events import TraceRecorder
        if not isinstance(observer, TraceRecorder):
            raise ServiceError("observer must be a repro.obs TraceRecorder")
        service.attach_observer(observer)
    service.register_tree("stream", parents)
    if warm:
        for backend in service.dispatcher.backends:
            service.registry.fetch("stream", "lca", backend.spec,
                                   sequential=backend.sequential)
    start = time.perf_counter()
    if mode == "columnar":
        tickets = service.submit_many("stream", xs, ys, at=arrivals_s)
    else:
        tickets = np.empty(xs.size, dtype=np.int64)
        for i in range(xs.size):
            tickets[i] = service.submit("stream", int(xs[i]), int(ys[i]),
                                        at=float(arrivals_s[i]))
    service.drain()
    answers = service.results(tickets)
    elapsed = time.perf_counter() - start
    if check_answers:
        expected = BinaryLiftingLCA(parents).query(xs, ys)
        if not np.array_equal(answers, expected):
            raise AssertionError("service answers disagree with the oracle")
    stats = service.stats()
    return {
        "mode": mode,
        "queries": int(stats.queries_answered),
        "batches": int(stats.batches_flushed),
        "mean_batch": round(stats.mean_batch_size, 1),
        "wall_s": elapsed,
        "wall_qps": xs.size / elapsed if elapsed > 0 else float("inf"),
        "modeled_qps": float(f"{stats.throughput_qps:.4g}"),
    }


def replica_scaling_sweep(
    n: int = 65_536,
    q: int = 131_072,
    *,
    replica_counts: Sequence[int] = (1, 2, 4, 8),
    policies: Sequence[str] = ROUTER_POLICIES,
    rate_qps: Optional[float] = None,
    max_batch: int = 256,
    max_wait_s: float = 2e-4,
    chunk: int = 8192,
    max_pending: Optional[int] = None,
    seed: int = 0,
    check_answers: bool = False,
) -> List[Dict[str, object]]:
    """Sweep replica count × routing policy on one hot, fully replicated tree.

    The cluster-scaling question the paper's Fig. 6 poses at the next level
    up: once one worker's batch-size-dependent backends saturate, does adding
    replicas keep absorbing offered load?  Each configuration serves the same
    ``q``-query stream, warmed, submitted in ``chunk``-sized column blocks
    (so routing and admission observe mid-stream queue depths), at an offered
    rate that deeply saturates even the largest cluster — by default twice
    the modeled GPU capacity of ``max(replica_counts)`` workers, derived from
    the same cost model the dispatcher prices with.

    Expected shape: the load-spreading policies (round-robin,
    least-outstanding) scale delivered throughput with the replica count,
    while consistent-hash pins the hot dataset to one copy and stays flat —
    the affinity-versus-scale-out trade-off in one table.

    ``max_pending`` bounds the cluster queue: chunks beyond the bound are
    shed (the raised ``Overloaded`` is absorbed) and the rows' ``shed_rate``
    column reports the admission-control drop rate.  Unbounded by default,
    so ``shed_rate`` is 0.0 unless a bound is passed; answer verification is
    skipped for configurations that shed (the rejected queries have no
    tickets to resolve).
    """
    parents = random_attachment_tree(n, seed=seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    expected = BinaryLiftingLCA(parents).query(xs, ys) if check_answers else None
    policy = BatchPolicy(max_batch_size=int(max_batch), max_wait_s=float(max_wait_s))
    if rate_qps is None:
        per_replica_cap = max_batch / estimate_batch_query_time(
            GPU_BATCH_BACKEND, max_batch
        )
        rate_qps = 2.0 * max(replica_counts) * per_replica_cap
    arrivals = np.arange(q, dtype=np.float64) / float(rate_qps)
    rows: List[Dict[str, object]] = []
    for policy_name in policies:
        for n_replicas in replica_counts:
            cluster = ClusterService(config=ClusterConfig(
                n_replicas=int(n_replicas),
                max_batch_size=policy.max_batch_size,
                max_wait_s=policy.max_wait_s,
                router=policy_name,
                max_pending=max_pending,
            ))
            cluster.register_tree("hot", parents, replicas=int(n_replicas))
            cluster.warm("hot")
            tickets = []
            for i in range(0, q, chunk):
                try:
                    tickets.append(cluster.submit_many(
                        "hot", xs[i:i + chunk], ys[i:i + chunk],
                        at=arrivals[i:i + chunk],
                    ))
                except Overloaded:
                    # Admission control shed (part of) this chunk; the drop
                    # is accounted in the cluster's shed-rate statistics.
                    pass
            cluster.drain()
            stats = cluster.stats()
            if expected is not None and stats.queries_shed == 0:
                answers = cluster.results(np.concatenate(tickets))
                if not np.array_equal(answers, expected):
                    raise AssertionError(
                        "cluster answers disagree with the oracle "
                        f"({policy_name}, {n_replicas} replicas)"
                    )
            rows.append({
                "policy": policy_name,
                "replicas": int(n_replicas),
                "n": n,
                "queries": stats.queries_answered,
                "offered_qps": float(f"{rate_qps:.4g}"),
                "throughput_qps": float(f"{stats.throughput_qps:.6g}"),
                "latency_p50_us": round(stats.latency_p50_s * 1e6, 2),
                "latency_p99_us": round(stats.latency_p99_s * 1e6, 2),
                "load_imbalance": round(stats.load_imbalance, 3),
                "shed_rate": round(stats.shed_rate, 4),
                "cache_hit_rate": round(stats.cache_hit_rate, 3),
            })
    return rows


def scenario_suite(
    scenario_names: Optional[Sequence[str]] = None,
    *,
    policies: Sequence[str] = ROUTER_POLICIES,
    n_replicas: int = 4,
    max_pending: Optional[int] = 8192,
    max_batch: int = 256,
    max_wait_s: float = 2e-4,
    admission_window_s: float = 5e-3,
    scale: float = 1.0,
    seed: int = 0,
    check_answers: bool = False,
    dedup: bool = False,
    answer_cache_bytes: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Sweep named scenarios × routing policies on a bounded replica cluster.

    The serving-layer question the workload package exists to answer: *how
    does the same cluster behave under every traffic shape we can imagine?*
    Each (scenario, policy) cell builds a fresh ``n_replicas``-replica
    cluster with a ``max_pending`` admission bound, replays the named
    scenario through :func:`repro.workloads.replay`, and reports the
    scenario totals — delivered throughput, p50/p99 modeled latency, shed
    rate and load imbalance — plus the per-phase peak shed rate (the
    flash-crowd signature).

    Expected shape: ``steady``/``diurnal`` never shed under any policy;
    ``flash-crowd`` sheds heavily during its flash phase no matter how the
    copies are balanced (admission control, not routing, is the binding
    constraint); the skewed scenarios separate the load-spreading policies
    (imbalance ≈ 1) from ``consistent-hash`` (imbalance grows with the
    number of pinned-hot datasets per replica).
    """
    names = list(scenario_names) if scenario_names is not None else sorted(SCENARIOS)
    policy = BatchPolicy(max_batch_size=int(max_batch), max_wait_s=float(max_wait_s))
    rows: List[Dict[str, object]] = []
    for policy_name in policies:
        for name in names:
            cluster = ClusterService(config=ClusterConfig(
                n_replicas=int(n_replicas),
                max_batch_size=policy.max_batch_size,
                max_wait_s=policy.max_wait_s,
                router=policy_name,
                max_pending=max_pending,
                dedup=dedup,
                answer_cache_bytes=answer_cache_bytes,
            ))
            report = replay(
                cluster,
                make_scenario(name, scale=scale, seed=seed),
                admission_window_s=admission_window_s,
                check_answers=check_answers,
            )
            peak_shed = max(p.shed_rate for p in report.phases)
            rows.append({
                "scenario": name,
                "policy": policy_name,
                "replicas": int(n_replicas),
                "phases": len(report.phases),
                "offered": report.queries_offered,
                "admitted": report.queries_admitted,
                "shed_rate": round(report.shed_rate, 4),
                "peak_phase_shed_rate": round(peak_shed, 4),
                "throughput_qps": float(f"{report.throughput_qps:.6g}"),
                "latency_p50_us": round(report.latency_p50_s * 1e6, 2),
                "latency_p99_us": round(report.latency_p99_s * 1e6, 2),
                "load_imbalance": round(report.load_imbalance, 3),
                "answer_cache_hit_rate": round(report.answer_cache_hit_rate, 4),
                "dedup_factor": round(report.dedup_factor, 3),
            })
    return rows


def offered_load_sweep(n: int = 65_536, q: int = 16_384, *,
                       rates_qps: Sequence[float] = (1e4, 1e5, 1e6, 1e7),
                       policies: Sequence[Tuple[int, float]] = DEFAULT_POLICIES,
                       seed: int = 0,
                       check_answers: bool = False) -> List[Dict[str, object]]:
    """Sweep offered load × batching policy on one shallow tree.

    For every combination a fresh service serves ``q`` queries arriving at a
    uniform rate; rows report delivered throughput, p50/p99 modeled latency,
    realized mean batch size and the fraction of batches the dispatcher sent
    to the GPU.  The expected shape: at low load every policy degenerates to
    small CPU-served batches, while at high load the micro-batching policies
    form device-sized batches and the GPU sustains the offered rate.
    """
    parents = random_attachment_tree(n, seed=seed)
    xs, ys = generate_random_queries(n, q, seed=seed + 1)
    rows: List[Dict[str, object]] = []
    for rate in rates_qps:
        arrivals = np.arange(q, dtype=np.float64) / float(rate)
        for max_batch, max_wait in policies:
            policy = BatchPolicy(max_batch_size=int(max_batch),
                                 max_wait_s=float(max_wait))
            row = serve_query_stream(parents, xs, ys, arrivals, policy,
                                     check_answers=check_answers)
            row["offered_qps"] = float(f"{rate:.4g}")
            row["n"] = n
            rows.append(row)
    return rows
