"""Algorithm registries and single-run drivers used by every experiment.

The paper compares fixed casts of algorithms:

* LCA (§3): single-core CPU Inlabel, multi-core CPU Inlabel, GPU naïve,
  GPU Inlabel;
* bridges (§4): single-core CPU DFS, multi-core CPU CK, GPU CK, GPU TV, and
  (in the §4.3 discussion) the GPU hybrid.

This module wires each cast member to its implementation and device spec, and
provides ``run_*`` helpers that execute one (algorithm, instance) pair with a
fresh execution context and return a uniform record with the modeled times —
the rows every figure/table runner is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..bridges import (
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from ..device import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    DeviceSpec,
    ExecutionContext,
)
from ..errors import ConfigurationError
from ..graphs.edgelist import EdgeList
from ..lca import InlabelLCA, NaiveGPULCA, RMQLCA, SequentialInlabelLCA

# ----------------------------------------------------------------------
# LCA cast
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LCAAlgorithmSpec:
    """One LCA cast member: how to build it and on which simulated device."""

    key: str
    label: str
    device: DeviceSpec
    factory: Callable[[np.ndarray, ExecutionContext], object]


def _make_gpu_inlabel(parents, ctx):
    return InlabelLCA(parents, ctx=ctx)


def _make_multicore_inlabel(parents, ctx):
    return InlabelLCA(parents, ctx=ctx)


def _make_singlecore_inlabel(parents, ctx):
    return SequentialInlabelLCA(parents, ctx=ctx)


def _make_gpu_naive(parents, ctx):
    return NaiveGPULCA(parents, ctx=ctx)


def _make_cpu_rmq(parents, ctx):
    return RMQLCA(parents, ctx=ctx, backend="segment-tree", sequential_cost=True)


#: The four algorithms of the paper's main LCA experiments (Figures 3–8).
LCA_ALGORITHMS: Dict[str, LCAAlgorithmSpec] = {
    "cpu1-inlabel": LCAAlgorithmSpec(
        "cpu1-inlabel", "Single-core CPU Inlabel", XEON_X5650_SINGLE, _make_singlecore_inlabel
    ),
    "cpum-inlabel": LCAAlgorithmSpec(
        "cpum-inlabel", "Multi-core CPU Inlabel", XEON_X5650_MULTI, _make_multicore_inlabel
    ),
    "gpu-naive": LCAAlgorithmSpec(
        "gpu-naive", "GPU Naive", GTX980, _make_gpu_naive
    ),
    "gpu-inlabel": LCAAlgorithmSpec(
        "gpu-inlabel", "GPU Inlabel", GTX980, _make_gpu_inlabel
    ),
}

#: The extra cast member of the §3.1 preliminary single-core experiment.
LCA_PRELIMINARY_ALGORITHMS: Dict[str, LCAAlgorithmSpec] = {
    "cpu1-inlabel": LCA_ALGORITHMS["cpu1-inlabel"],
    "cpu1-rmq": LCAAlgorithmSpec(
        "cpu1-rmq", "Single-core CPU RMQ", XEON_X5650_SINGLE, _make_cpu_rmq
    ),
}


@dataclass
class LCARunRecord:
    """Modeled result of preprocessing a tree and answering a query batch."""

    algorithm: str
    label: str
    n: int
    q: int
    preprocess_time_s: float
    query_time_s: float
    answers: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def total_time_s(self) -> float:
        """Preprocessing plus query time."""
        return self.preprocess_time_s + self.query_time_s

    @property
    def nodes_per_second(self) -> float:
        """Preprocessing throughput (the y-axis of Figures 3a/3b/7)."""
        return self.n / self.preprocess_time_s if self.preprocess_time_s > 0 else float("inf")

    @property
    def queries_per_second(self) -> float:
        """Query throughput (the y-axis of Figures 3c/3d/6/8)."""
        return self.q / self.query_time_s if self.query_time_s > 0 else float("inf")

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row for report tables."""
        return {
            "algorithm": self.label,
            "n": self.n,
            "q": self.q,
            "preprocess_ms": round(self.preprocess_time_s * 1e3, 3),
            "query_ms": round(self.query_time_s * 1e3, 3),
            "total_ms": round(self.total_time_s * 1e3, 3),
            "nodes_per_s": float(f"{self.nodes_per_second:.4g}"),
            "queries_per_s": float(f"{self.queries_per_second:.4g}"),
        }


def run_lca(parents: np.ndarray, xs: np.ndarray, ys: np.ndarray,
            algorithms: Optional[Sequence[str]] = None,
            *, keep_answers: bool = False,
            check_agreement: bool = True) -> List[LCARunRecord]:
    """Run a set of LCA algorithms on one tree and one query batch.

    Each algorithm gets fresh preprocessing and query execution contexts on
    its own device; when ``check_agreement`` is true the answers of all
    algorithms are verified to be identical (a built-in sanity check that the
    measured runs are actually solving the problem).
    """
    keys = list(LCA_ALGORITHMS) if algorithms is None else list(algorithms)
    records: List[LCARunRecord] = []
    reference: Optional[np.ndarray] = None
    for key in keys:
        if key not in LCA_ALGORITHMS:
            raise ConfigurationError(f"unknown LCA algorithm {key!r}")
        spec = LCA_ALGORITHMS[key]
        pre_ctx = ExecutionContext(spec.device)
        algo = spec.factory(parents, pre_ctx)
        query_ctx = ExecutionContext(spec.device)
        answers = algo.query(xs, ys, ctx=query_ctx)
        if check_agreement:
            if reference is None:
                reference = answers
            elif not np.array_equal(reference, answers):
                raise AssertionError(
                    f"LCA algorithms disagree: {spec.label} vs {records[0].label}"
                )
        records.append(
            LCARunRecord(
                algorithm=key,
                label=spec.label,
                n=int(np.asarray(parents).size),
                q=int(np.asarray(xs).size),
                preprocess_time_s=pre_ctx.elapsed,
                query_time_s=query_ctx.elapsed,
                answers=answers if keep_answers else None,
            )
        )
    return records


# ----------------------------------------------------------------------
# Bridge cast
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BridgeAlgorithmSpec:
    """One bridge-finding cast member."""

    key: str
    label: str
    device: DeviceSpec
    runner: Callable[[EdgeList, ExecutionContext], object]


def _run_dfs(edges, ctx):
    return find_bridges_dfs(edges, ctx=ctx)


def _run_cpu_ck(edges, ctx):
    return find_bridges_ck(edges, device="cpu", ctx=ctx)


def _run_gpu_ck(edges, ctx):
    return find_bridges_ck(edges, device="gpu", ctx=ctx)


def _run_gpu_tv(edges, ctx):
    return find_bridges_tarjan_vishkin(edges, ctx=ctx)


def _run_gpu_hybrid(edges, ctx):
    return find_bridges_hybrid(edges, ctx=ctx)


#: The four algorithms of Figures 9–10, plus the hybrid of §4.3 / Figure 11.
BRIDGE_ALGORITHMS: Dict[str, BridgeAlgorithmSpec] = {
    "cpu1-dfs": BridgeAlgorithmSpec("cpu1-dfs", "Single-core CPU DFS",
                                    XEON_X5650_SINGLE, _run_dfs),
    "cpum-ck": BridgeAlgorithmSpec("cpum-ck", "Multi-core CPU CK",
                                   XEON_X5650_MULTI, _run_cpu_ck),
    "gpu-ck": BridgeAlgorithmSpec("gpu-ck", "GPU CK", GTX980, _run_gpu_ck),
    "gpu-tv": BridgeAlgorithmSpec("gpu-tv", "GPU TV", GTX980, _run_gpu_tv),
    "gpu-hybrid": BridgeAlgorithmSpec("gpu-hybrid", "GPU Hybrid", GTX980, _run_gpu_hybrid),
}

#: The cast shown in Figures 9 and 10 (no hybrid).
FIGURE_BRIDGE_ALGORITHMS = ["cpu1-dfs", "cpum-ck", "gpu-ck", "gpu-tv"]
#: The GPU cast of the Figure 11 breakdown.
BREAKDOWN_BRIDGE_ALGORITHMS = ["gpu-ck", "gpu-tv", "gpu-hybrid"]


@dataclass
class BridgeRunRecord:
    """Modeled result of one bridge-finding run."""

    algorithm: str
    label: str
    dataset: str
    n: int
    m: int
    num_bridges: int
    total_time_s: float
    phase_times: Dict[str, float]

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row for report tables."""
        return {
            "dataset": self.dataset,
            "algorithm": self.label,
            "n": self.n,
            "m": self.m,
            "bridges": self.num_bridges,
            "total_ms": round(self.total_time_s * 1e3, 3),
        }


def run_bridges(edges: EdgeList, dataset: str = "graph",
                algorithms: Optional[Sequence[str]] = None,
                *, check_agreement: bool = True) -> List[BridgeRunRecord]:
    """Run a set of bridge-finding algorithms on one connected graph.

    As with :func:`run_lca`, every algorithm gets a fresh execution context on
    its own device and all bridge masks are cross-checked for agreement.
    """
    keys = FIGURE_BRIDGE_ALGORITHMS if algorithms is None else list(algorithms)
    records: List[BridgeRunRecord] = []
    reference_mask: Optional[np.ndarray] = None
    for key in keys:
        if key not in BRIDGE_ALGORITHMS:
            raise ConfigurationError(f"unknown bridge algorithm {key!r}")
        spec = BRIDGE_ALGORITHMS[key]
        ctx = ExecutionContext(spec.device)
        result = spec.runner(edges, ctx)
        if check_agreement:
            if reference_mask is None:
                reference_mask = result.bridge_mask
            elif not np.array_equal(reference_mask, result.bridge_mask):
                raise AssertionError(
                    f"bridge algorithms disagree: {spec.label} vs {records[0].label}"
                )
        records.append(
            BridgeRunRecord(
                algorithm=key,
                label=spec.label,
                dataset=dataset,
                n=edges.num_nodes,
                m=edges.num_edges,
                num_bridges=result.num_bridges,
                total_time_s=ctx.elapsed,
                phase_times=dict(result.phase_times),
            )
        )
    return records
