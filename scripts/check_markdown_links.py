#!/usr/bin/env python
"""Markdown link checker: relative links and anchors must resolve.

CI's ``docs`` job runs this over ``README.md``, ``ROADMAP.md`` and
``docs/`` so
documentation rot — a renamed file, a moved section, a typoed anchor —
fails the build instead of silently 404ing for readers.  No third-party
dependencies and no network: external (``http``/``https``/``mailto``)
links are recorded but not fetched; everything else is resolved against
the repository checkout.

Checked per markdown file:

* inline links and images ``[text](target)`` — the target path must exist
  (relative targets resolve against the file's own directory);
* anchors ``target#section`` (and intra-file ``#section``) — the target
  file must contain a heading whose GitHub slug equals ``section``;
* reference-style definitions ``[label]: target`` get the same treatment.

Usage::

    python scripts/check_markdown_links.py README.md ROADMAP.md docs

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline links/images: [text](target "optional title")
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [label]: target
REFERENCE_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
#: ATX headings, for anchor slugs.
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
#: Fenced code blocks are stripped before link extraction.
CODE_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation, dashes."""
    # Strip inline code/links markup first so `code` headings slug cleanly.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    content = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: List[str] = []
    counts: dict = {}
    for match in HEADING.finditer(content):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.append(slug if n == 0 else f"{slug}-{n}")
    return slugs


def extract_targets(path: Path) -> Iterable[str]:
    content = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(content):
            yield match.group(1)


def check_file(md: Path, repo_root: Path) -> Tuple[List[str], int]:
    """Broken-link messages and the count of links checked for one file."""
    problems: List[str] = []
    checked = 0
    for target in extract_targets(md):
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        checked += 1
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{md}: broken link -> {target}")
                continue
            if repo_root not in resolved.parents and resolved != repo_root:
                problems.append(f"{md}: link escapes the repo -> {target}")
                continue
        else:
            resolved = md.resolve()
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                problems.append(f"{md}: anchor on a non-markdown target -> {target}")
                continue
            if anchor.lower() not in heading_slugs(resolved):
                problems.append(f"{md}: missing anchor -> {target}")
    return problems, checked


def collect_markdown(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        help="markdown files and/or directories to scan recursively",
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parent.parent
    files = collect_markdown(args.paths)
    all_problems: List[str] = []
    total = 0
    for md in files:
        problems, checked = check_file(md, repo_root)
        all_problems.extend(problems)
        total += checked
    for problem in all_problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(
        f"checked {total} relative links/anchors across {len(files)} files: "
        f"{len(all_problems)} broken"
    )
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main())
