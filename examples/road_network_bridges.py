#!/usr/bin/env python
"""Finding critical road segments (bridges) in a road network.

A bridge in a road network is a segment whose closure disconnects part of the
network — exactly the graph-theoretic bridges the paper's second application
computes.  Road networks are the paper's hardest instances: they are extremely
sparse and have huge diameters, which cripples BFS-based methods (the CK
algorithm) while the Euler-tour-based Tarjan–Vishkin algorithm is unaffected.

This example generates a road-network stand-in (perturbed grid, same regime as
the DIMACS USA road graphs), runs all four bridge-finding algorithms, verifies
they agree, and prints the per-phase breakdown that explains *why* TV wins
(the paper's Figure 11 story).

Run with:  python examples/road_network_bridges.py
"""

from __future__ import annotations

from repro.bridges import (
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from repro.device import (
    GTX980,
    XEON_X5650_MULTI,
    XEON_X5650_SINGLE,
    ExecutionContext,
    PhaseBreakdown,
    format_breakdown_table,
)
from repro.graphs import characterize, largest_connected_component
from repro.graphs.generators import road_graph_with_target_size

TARGET_NODES = 60_000


def main() -> None:
    print(f"Generating a road network with ~{TARGET_NODES:,} intersections ...")
    graph, (rows, cols) = road_graph_with_target_size(
        TARGET_NODES, removal_fraction=0.45, subdivide_fraction=0.1,
        deadend_fraction=0.5, seed=5
    )
    graph, _ = largest_connected_component(graph)
    stats = characterize(graph, "road-network", restrict_to_lcc=False)
    print(f"  grid {rows}x{cols}; largest component: {stats.nodes:,} nodes, "
          f"{stats.edges:,} segments, diameter >= {stats.diameter}")

    print("\nRunning all bridge-finding algorithms ...")
    runs = [
        ("Single-core CPU DFS", find_bridges_dfs, XEON_X5650_SINGLE, {}),
        ("Multi-core CPU CK", find_bridges_ck, XEON_X5650_MULTI, {"device": "cpu"}),
        ("GPU CK", find_bridges_ck, GTX980, {}),
        ("GPU Tarjan-Vishkin", find_bridges_tarjan_vishkin, GTX980, {}),
        ("GPU hybrid", find_bridges_hybrid, GTX980, {}),
    ]
    reference = None
    breakdowns = []
    totals = {}
    for label, fn, spec, kwargs in runs:
        ctx = ExecutionContext(spec)
        result = fn(graph, ctx=ctx, **kwargs)
        if reference is None:
            reference = result
        assert result.agrees_with(reference), f"{label} found different bridges!"
        totals[label] = ctx.elapsed
        if result.phase_times:
            breakdowns.append(PhaseBreakdown(label, tuple(result.phase_times.items())))
        print(f"  {label:22s}: {result.num_bridges:6,d} critical segments, "
              f"{ctx.elapsed * 1e3:9.3f} ms modeled")

    tv = totals["GPU Tarjan-Vishkin"]
    print(f"\nGPU TV speedup over single-core DFS : {totals['Single-core CPU DFS'] / tv:5.1f}x")
    print(f"GPU TV speedup over GPU CK          : {totals['GPU CK'] / tv:5.1f}x")

    print("\nPer-phase breakdown (the paper's Figure 11 view):")
    print(format_breakdown_table(breakdowns, time_unit="ms"))
    print("\nBFS dominates the CK algorithm because every one of the road "
          "network's thousands of BFS levels is a separate kernel launch; the "
          "Euler-tour pipeline of TV has no diameter-dependent stage.")


if __name__ == "__main__":
    main()
