#!/usr/bin/env python
"""Phylogenetic distance computation with batched LCA queries.

The naïve GPU LCA algorithm the paper compares against was originally built
for phylogenetic distance computation (Martins et al., cited as [38]): given a
species tree and a large set of species pairs, the distance between two
species is ``depth(x) + depth(y) - 2·depth(LCA(x, y))``.

This example builds a synthetic species tree (a scale-free tree — speciation
events attach preferentially to diverse clades), computes pairwise distances
for a large batch of random pairs with the Inlabel algorithm, and shows the
online-usage pattern from the paper's batch-size experiment: results arrive in
small batches, which is exactly where the GPU needs enough queries per batch
to pay off.

Run with:  python examples/phylogenetic_lca.py
"""

from __future__ import annotations

from repro.device import GTX980, XEON_X5650_SINGLE, ExecutionContext
from repro.euler import tree_statistics_from_parents
from repro.graphs import generate_random_queries
from repro.graphs.generators import barabasi_albert_tree
from repro.lca import InlabelLCA, run_batched_queries

NUM_SPECIES = 100_000
NUM_PAIRS = 200_000


def main() -> None:
    print(f"Building a species tree with {NUM_SPECIES:,} leaves+ancestors ...")
    parents = barabasi_albert_tree(NUM_SPECIES, seed=11)
    depths = tree_statistics_from_parents(parents).depth

    print("Preprocessing the tree with the GPU Inlabel algorithm ...")
    preprocess_ctx = ExecutionContext(GTX980)
    lca = InlabelLCA(parents, ctx=preprocess_ctx)
    print(f"  modeled preprocessing time: {preprocess_ctx.elapsed * 1e3:.2f} ms")

    print(f"Computing phylogenetic distances for {NUM_PAIRS:,} random pairs ...")
    xs, ys = generate_random_queries(NUM_SPECIES, NUM_PAIRS, seed=12)
    query_ctx = ExecutionContext(GTX980)
    ancestors = lca.query(xs, ys, ctx=query_ctx)
    distances = depths[xs] + depths[ys] - 2 * depths[ancestors]
    print(f"  modeled query time        : {query_ctx.elapsed * 1e3:.2f} ms "
          f"({NUM_PAIRS / query_ctx.elapsed:,.0f} pairs/s)")
    print(f"  distance distribution     : min={distances.min()}, "
          f"mean={distances.mean():.2f}, max={distances.max()}")

    print("\nOnline usage: how batch size changes throughput (paper Fig. 6)")
    print(f"{'batch size':>12s} {'GPU [pairs/s]':>16s} {'1-core CPU [pairs/s]':>22s}")
    from repro.lca import SequentialInlabelLCA

    cpu_lca = SequentialInlabelLCA(parents)
    for batch in (1, 100, 10_000, NUM_PAIRS):
        gpu = run_batched_queries(lca, xs, ys, batch, GTX980,
                                  keep_answers=False, max_batches=128)
        cpu = run_batched_queries(cpu_lca, xs, ys, batch, XEON_X5650_SINGLE,
                                  keep_answers=False, max_batches=128)
        print(f"{batch:>12,d} {gpu.queries_per_second:>16,.0f} {cpu.queries_per_second:>22,.0f}")

    print("\nDone. Note how the GPU only overtakes the CPU once pairs arrive in "
          "batches of a few hundred or more.")


if __name__ == "__main__":
    main()
