#!/usr/bin/env python
"""Robustness analysis of a social network via bridges and 2-edge-connectivity.

Bridges are the weak links of a network: an edge whose removal disconnects
users from the rest.  This example generates a social-network-like graph
(power-law degrees, small diameter, many pendant users — the regime of the
paper's socfb / LiveJournal datasets), finds its bridges with the GPU
Tarjan–Vishkin algorithm, and then decomposes the graph into 2-edge-connected
components by deleting the bridges and running connected components — the
simple decomposition recipe described at the start of the paper's §4.

Run with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.bridges import find_bridges_ck, find_bridges_tarjan_vishkin
from repro.device import GTX980, ExecutionContext
from repro.graphs import EdgeList, connected_components, largest_connected_component
from repro.graphs.generators import social_graph

NUM_USERS = 60_000


def main() -> None:
    print(f"Generating a social network with {NUM_USERS:,} users ...")
    graph, _ = largest_connected_component(social_graph(NUM_USERS, seed=21))
    degrees = graph.degrees()
    print(f"  largest component: {graph.num_nodes:,} users, {graph.num_edges:,} "
          f"friendships, max degree {degrees.max()}, mean degree {degrees.mean():.1f}")

    print("\nFinding weak links (bridges) with GPU Tarjan-Vishkin ...")
    tv_ctx = ExecutionContext(GTX980)
    tv = find_bridges_tarjan_vishkin(graph, ctx=tv_ctx)
    ck_ctx = ExecutionContext(GTX980)
    ck = find_bridges_ck(graph, ctx=ck_ctx)
    assert tv.agrees_with(ck), "TV and CK disagree!"
    print(f"  bridges found      : {tv.num_bridges:,} "
          f"({100.0 * tv.num_bridges / graph.num_edges:.1f}% of all edges)")
    print(f"  GPU TV modeled time: {tv_ctx.elapsed * 1e3:8.3f} ms")
    print(f"  GPU CK modeled time: {ck_ctx.elapsed * 1e3:8.3f} ms "
          "(small-diameter graphs are CK's best case)")

    print("\nDecomposing into 2-edge-connected components ...")
    keep = ~tv.bridge_mask
    without_bridges = EdgeList(graph.u[keep], graph.v[keep], graph.num_nodes)
    labels = connected_components(without_bridges)
    unique, sizes = np.unique(labels, return_counts=True)
    sizes.sort()
    print(f"  2-edge-connected components : {unique.size:,}")
    print(f"  largest component size      : {sizes[-1]:,} users "
          f"({100.0 * sizes[-1] / graph.num_nodes:.1f}% of the network)")
    print(f"  singleton components        : {int((sizes == 1).sum()):,} "
          "(users attached by a single friendship)")

    core_fraction = sizes[-1] / graph.num_nodes
    print("\nInterpretation: the network has a large 2-edge-connected core "
          f"({core_fraction:.0%} of users) surrounded by pendant users and chains "
          "whose only connection is a bridge — removing any of those edges cuts "
          "them off.")


if __name__ == "__main__":
    main()
