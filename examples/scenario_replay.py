#!/usr/bin/env python
"""Scenario-driven traffic on the serving stack: generate, replay, report.

Demonstrates the :mod:`repro.workloads` subsystem end to end:

1. replay the ``steady`` scenario on a single-node service — the degenerate
   case that reproduces the legacy uniform-stream benchmarks;
2. replay ``flash-crowd`` on a bounded 4-replica cluster and watch the
   flash phase trip admission control (``Overloaded`` shedding) while the
   calm and recovery phases sail through;
3. replay ``multi-tenant`` under two routing policies and compare the load
   imbalance the same traffic produces;
4. build a custom scenario from parts — a diurnal intensity riding under a
   Zipf key skew — to show the spec is open, not a fixed menu.

Run with:  python examples/scenario_replay.py
"""

from __future__ import annotations

from repro.service import (
    ClusterConfig,
    ClusterService,
    LCAQueryService,
    ServiceConfig,
)
from repro.workloads import (
    InhomogeneousPoissonArrivals,
    Phase,
    Scenario,
    TrafficSource,
    ZipfKeys,
    diurnal_intensity,
    make_scenario,
    replay,
)

CONFIG = ServiceConfig(max_batch_size=256, max_wait_s=2e-4)


def bounded_cluster(policy_name: str = "least-outstanding") -> ClusterService:
    return ClusterService(config=ClusterConfig(
        n_replicas=4,
        max_batch_size=256,
        max_wait_s=2e-4,
        router=policy_name,
        max_pending=8192,
    ))


def main() -> None:
    print("=" * 72)
    print("Workload scenarios: traffic shapes as declarative, replayable specs")
    print("=" * 72)

    # --- 1. steady on a single node ------------------------------------
    service = LCAQueryService(config=CONFIG)
    report = replay(service, make_scenario("steady", scale=0.5), check_answers=True)
    print("\n--- steady, single-node service ---")
    print(report.format())
    assert report.queries_shed == 0

    # --- 2. flash crowd against a bounded cluster ----------------------
    report = replay(bounded_cluster(), make_scenario("flash-crowd"), check_answers=True)
    print("\n--- flash-crowd, bounded 4-replica cluster ---")
    print(report.format())
    flash = next(p for p in report.phases if p.name == "flash")
    assert flash.queries_shed > 0, "the flash phase must trip admission control"
    assert all(
        p.queries_shed == 0 for p in report.phases if p.name != "flash"
    ), "calm phases must not shed"

    # --- 3. routing policies under the multi-tenant mix ----------------
    print("\n--- multi-tenant, routing-policy contrast ---")
    for policy_name in ("least-outstanding", "consistent-hash"):
        report = replay(bounded_cluster(policy_name), make_scenario("multi-tenant"))
        print(
            f"{policy_name:<19}: {report.throughput_qps:>9,.0f} q/s, "
            f"p99 {report.latency_p99_s * 1e6:6.1f} us, "
            f"imbalance {report.load_imbalance:.2f}x"
        )

    # --- 4. a custom scenario from parts -------------------------------
    daily_peak = InhomogeneousPoissonArrivals(
        diurnal_intensity(50_000.0, 300_000.0, period_s=0.2), peak_qps=300_000.0
    )
    custom = Scenario(
        name="zipf-diurnal",
        description="day/night cycle over one Zipf-skewed catalog",
        sources=(
            TrafficSource("catalog", nodes=20_000, keys=ZipfKeys(alpha=1.3)),
        ),
        phases=(Phase("day", daily_peak, 0.2),),
        seed=7,
    )
    report = replay(bounded_cluster(), custom, check_answers=True)
    print("\n--- custom scenario (diurnal arrivals x Zipf keys) ---")
    print(report.format())

    print("\nall replayed answers agree with the binary-lifting oracle")


if __name__ == "__main__":
    main()
