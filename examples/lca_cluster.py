#!/usr/bin/env python
"""Scaling out the LCA query service: replicas, routing and backpressure.

Demonstrates the :mod:`repro.service.cluster` subsystem end to end:

1. build a 4-replica cluster and register datasets — a hot tree replicated
   onto every worker, plus lightly used trees placed by the consistent-hash
   ring (one copy each);
2. flood the hot dataset through the columnar ``submit_many`` path and
   compare routing policies: least-outstanding work spreads the load across
   all four copies (~4x one worker's throughput), while consistent-hash
   pins the dataset to one copy for cache affinity and stays at 1x;
3. bound the cluster queue and watch admission control shed the excess with
   the typed ``Overloaded`` error instead of queueing without limit;
4. cross-check every served answer against the binary-lifting oracle.

Run with:  python examples/lca_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.errors import Overloaded
from repro.graphs.generators import barabasi_albert_tree, random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.service import ClusterConfig, ClusterService

N_REPLICAS = 4
N_NODES = 30_000
N_QUERIES = 40_000
CHUNK = 4_096
CONFIG = ClusterConfig(
    n_replicas=N_REPLICAS, max_batch_size=256, max_wait_s=2e-4
)


def flood(cluster, xs, ys, arrivals):
    """Push the stream through in column blocks; returns all tickets."""
    tickets = []
    for i in range(0, xs.size, CHUNK):
        sl = slice(i, i + CHUNK)
        tickets.append(cluster.submit_many("hot", xs[sl], ys[sl], at=arrivals[sl]))
    cluster.drain()
    return np.concatenate(tickets)


def main() -> None:
    print("=" * 72)
    print("Sharded LCA serving: 4 replicas, load-aware routing, backpressure")
    print("=" * 72)

    hot = random_attachment_tree(N_NODES, seed=1)
    xs, ys = generate_random_queries(N_NODES, N_QUERIES, seed=2)
    # Offered load far beyond one worker's modeled capacity.
    arrivals = np.arange(N_QUERIES, dtype=np.float64) / 4e8
    oracle = BinaryLiftingLCA(hot).query(xs, ys)

    # --- routing policies under the same flood -------------------------
    for policy_name in ("least-outstanding", "consistent-hash"):
        cluster = ClusterService(config=CONFIG.derive(router=policy_name))
        cluster.register_tree("hot", hot, replicas=N_REPLICAS)
        # Two cold datasets, placed by the consistent-hash ring (1 copy each;
        # the lazy one is only materialized if it ever gets a query).
        cluster.register_tree("citations", barabasi_albert_tree(5_000, seed=3))
        cluster.register_tree(
            "backup", loader=lambda: random_attachment_tree(5_000, seed=4)
        )
        cluster.warm("hot")

        tickets = flood(cluster, xs, ys, arrivals)
        assert np.array_equal(cluster.results(tickets), oracle)

        stats = cluster.stats()
        print(f"\n--- router: {policy_name} ---")
        print(stats.format())
        placements = {name: cluster.placement(name) for name in ("citations", "backup")}
        print(f"ring placement     : {placements}")

    print("\nall served answers agree with the binary-lifting oracle")

    # --- backpressure ---------------------------------------------------
    print("\n--- bounded cluster queue (max_pending=2048) ---")
    bounded = ClusterService(config=CONFIG.derive(
        max_batch_size=1 << 14, max_wait_s=1.0, max_pending=2_048
    ))
    bounded.register_tree("hot", hot, replicas=N_REPLICAS)
    admitted = 0
    try:
        for i in range(0, N_QUERIES, CHUNK):
            sl = slice(i, i + CHUNK)
            admitted += bounded.submit_many("hot", xs[sl], ys[sl], at=arrivals[sl]).size
    except Overloaded as exc:
        admitted += exc.admitted
        print(f"Overloaded raised  : {exc}")
    stats = bounded.stats()
    print(
        f"admitted/shed      : {admitted} admitted, {stats.queries_shed} shed "
        f"(shed rate {stats.shed_rate:.1%})"
    )
    bounded.drain()
    print(
        f"after drain        : pending={bounded.pending_count()}, "
        f"answered={bounded.stats().queries_answered}"
    )


if __name__ == "__main__":
    main()
