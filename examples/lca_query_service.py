#!/usr/bin/env python
"""Serving LCA queries online: registry, micro-batching and dispatch in action.

Demonstrates the :mod:`repro.service` subsystem end to end:

1. register two trees with the service (one eagerly, one lazily);
2. stream individual queries at two very different offered loads and watch
   the scheduler form singleton batches (served on the CPU) under trickle
   traffic and device-sized batches (served on the GPU) under flood traffic;
3. print the service statistics — batch-size histogram, flush triggers,
   backend mix, p50/p99 modeled latency and index-cache accounting — and
   cross-check every answer against the binary-lifting oracle.

Run with:  python examples/lca_query_service.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import barabasi_albert_tree, random_attachment_tree
from repro.graphs.trees import generate_random_queries
from repro.lca import BinaryLiftingLCA
from repro.service import CostModelDispatcher, LCAQueryService, ServiceConfig


def main() -> None:
    print("=" * 72)
    print("LCA query service: micro-batching + cost-model dispatch")
    print("=" * 72)

    dispatcher = CostModelDispatcher()
    crossover = dispatcher.crossover_batch_size()
    print(f"cost-model crossover: CPU serves batches < {crossover} queries, "
          f"GPU serves larger ones\n")

    service = LCAQueryService(
        config=ServiceConfig(max_batch_size=512, max_wait_s=2e-4),
        dispatcher=dispatcher,
    )
    n = 50_000
    shallow = random_attachment_tree(n, seed=1)
    service.register_tree("social", shallow)
    # Lazy registration: the scale-free tree is only built if queried.
    service.register_tree("citations", loader=lambda: barabasi_albert_tree(n, seed=2))

    # Phase 1 — trickle: 100 queries, one every 2 ms (slower than the wait
    # budget, so every query becomes its own CPU-served batch).
    xs, ys = generate_random_queries(n, 5_100, seed=3)
    tickets = []
    t = 0.0
    for i in range(100):
        tickets.append(service.submit("social", int(xs[i]), int(ys[i]), at=t))
        t += 2e-3
    # Phase 2 — flood: 5000 queries at 2M queries/s (the scheduler forms
    # 400-or-512-query batches, all dispatched to the GPU).
    for i in range(100, 5_100):
        tickets.append(service.submit("social", int(xs[i]), int(ys[i]), at=t))
        t += 5e-7
    # A few queries against the lazy dataset, then flush everything.
    lazy_tickets = [service.submit("citations", 7, 11, at=t + i * 1e-6)
                    for i in range(3)]
    service.drain()

    answers = service.results(tickets)
    oracle = BinaryLiftingLCA(shallow)
    assert np.array_equal(answers, oracle.query(xs[:5_100], ys[:5_100]))
    assert len({service.result(t) for t in lazy_tickets}) == 1
    print("all 5103 served answers agree with the binary-lifting oracle\n")

    print(service.stats().format())
    print()
    trickle, flood = service.latency(tickets[0]), service.latency(tickets[-1])
    print(f"trickle-phase query latency : {trickle * 1e6:9.2f} us "
          f"(wait budget + CPU singleton + cold index build)")
    print(f"flood-phase query latency   : {flood * 1e6:9.2f} us "
          f"(amortized inside a GPU batch)")


if __name__ == "__main__":
    main()
