#!/usr/bin/env python
"""Quickstart: the Euler tour technique, LCA queries and bridge finding in one script.

Walks through the library's three layers on small instances:

1. build an Euler tour of a random tree and read off node statistics;
2. answer LCA queries with the GPU Inlabel algorithm and cross-check them
   against the naïve algorithm and a brute-force oracle;
3. find the bridges of a small road-network-like graph with all four
   bridge-finding algorithms and compare their modeled running times.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bridges import (
    find_bridges_ck,
    find_bridges_dfs,
    find_bridges_hybrid,
    find_bridges_tarjan_vishkin,
)
from repro.device import GTX980, XEON_X5650_SINGLE, ExecutionContext
from repro.euler import build_euler_tour_from_parents, compute_tree_stats
from repro.graphs import generate_random_queries, largest_connected_component
from repro.graphs.generators import random_attachment_tree, road_graph
from repro.lca import InlabelLCA, NaiveGPULCA, brute_force_lca_batch


def euler_tour_demo() -> None:
    """Build an Euler tour of a 12-node random tree and print its statistics."""
    print("=" * 72)
    print("1. The Euler tour technique")
    print("=" * 72)
    parents = random_attachment_tree(12, seed=7)
    tour = build_euler_tour_from_parents(parents)
    stats = compute_tree_stats(tour)
    print(f"tree parents      : {parents.tolist()}")
    print(f"tour (half-edges) : {[f'{tour.src[e]}->{tour.dst[e]}' for e in tour.tour]}")
    print(f"node depths       : {stats.depth.tolist()}")
    print(f"preorder numbers  : {stats.preorder.tolist()}")
    print(f"subtree sizes     : {stats.subtree_size.tolist()}")
    print()


def lca_demo() -> None:
    """Answer LCA queries on a 50k-node tree and report modeled device times."""
    print("=" * 72)
    print("2. Lowest common ancestors (Inlabel vs naive)")
    print("=" * 72)
    n, q = 50_000, 50_000
    parents = random_attachment_tree(n, seed=1)
    xs, ys = generate_random_queries(n, q, seed=2)

    gpu_pre = ExecutionContext(GTX980)
    inlabel = InlabelLCA(parents, ctx=gpu_pre)
    gpu_query = ExecutionContext(GTX980)
    answers = inlabel.query(xs, ys, ctx=gpu_query)

    naive = NaiveGPULCA(parents)
    assert np.array_equal(answers, naive.query(xs, ys)), "algorithms disagree!"
    spot = slice(0, 5)
    assert np.array_equal(answers[spot], brute_force_lca_batch(parents, xs[spot], ys[spot]))

    print(f"tree size / queries        : {n} / {q}")
    print(f"sample answers             : {answers[:8].tolist()}")
    print(f"GPU Inlabel preprocessing  : {gpu_pre.elapsed * 1e3:7.3f} ms (modeled)")
    print(f"GPU Inlabel queries        : {gpu_query.elapsed * 1e3:7.3f} ms (modeled)")
    print(f"  -> throughput            : {q / gpu_query.elapsed:,.0f} queries/s")
    print()


def bridges_demo() -> None:
    """Find bridges of a road-like graph with every algorithm in the paper."""
    print("=" * 72)
    print("3. Bridge finding (DFS, CK, Tarjan-Vishkin, hybrid)")
    print("=" * 72)
    graph, _ = largest_connected_component(road_graph(60, 70, seed=3))
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    runs = [
        ("Single-core CPU DFS", find_bridges_dfs, XEON_X5650_SINGLE),
        ("GPU CK", find_bridges_ck, GTX980),
        ("GPU Tarjan-Vishkin", find_bridges_tarjan_vishkin, GTX980),
        ("GPU hybrid", find_bridges_hybrid, GTX980),
    ]
    reference = None
    for label, fn, spec in runs:
        ctx = ExecutionContext(spec)
        result = fn(graph, ctx=ctx)
        if reference is None:
            reference = result
        assert result.agrees_with(reference), f"{label} disagrees with the baseline"
        print(f"{label:22s}: {result.num_bridges:5d} bridges, "
              f"{ctx.elapsed * 1e3:8.3f} ms modeled")
    print()


def main() -> None:
    euler_tour_demo()
    lca_demo()
    bridges_demo()
    print("Quickstart finished; all algorithms agreed on every instance.")


if __name__ == "__main__":
    main()
